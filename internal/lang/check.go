package lang

import "fmt"

// Check resolves names, assigns symbol IDs, computes expression types, and
// validates the program. It must run before lowering.
func Check(f *File) error {
	c := &checker{file: f}
	return c.run()
}

type checker struct {
	file   *File
	fn     *FuncDecl
	scopes []map[string]*Symbol
	loop   int // loop nesting depth, for break/continue validation
}

func (c *checker) errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	// Struct types must be complete (a forward-declared struct that is
	// never defined has no fields and zero size).
	for _, st := range c.file.structsByName {
		if len(st.Fields) == 0 {
			return c.errf(st.Pos, "struct %s is declared but never defined", st.Name)
		}
	}
	for _, g := range c.file.Globals {
		c.declareSymbol(g.Sym)
		if g.Init != nil {
			if err := c.checkExpr(g.Init); err != nil {
				return err
			}
			if err := c.coerceAssign(g.Sym.Type, g.Init, g.Pos); err != nil {
				return err
			}
		}
	}
	for _, fn := range c.file.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) declareSymbol(sym *Symbol) {
	sym.ID = c.file.NextSymID
	c.file.NextSymID++
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) bind(sym *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return c.errf(sym.Pos, "%s redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	for _, g := range c.file.Globals {
		if g.Sym.Name == name {
			return g.Sym
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	if fn.Ret.Kind != KindVoid && !fn.Ret.IsScalar() {
		return c.errf(fn.Pos, "function %s: return type must be scalar or void", fn.Name)
	}
	c.fn = fn
	c.pushScope()
	defer c.popScope()
	for _, prm := range fn.Params {
		if !prm.Type.IsScalar() {
			return c.errf(prm.Pos, "parameter %s: aggregate parameters must be passed by pointer", prm.Name)
		}
		c.declareSymbol(prm)
		if err := c.bind(prm); err != nil {
			return err
		}
	}
	return c.checkStmt(fn.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, sub := range st.Stmts {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if st.Sym.Type.Kind == KindVoid {
			return c.errf(st.Pos, "variable %s has void type", st.Sym.Name)
		}
		st.Sym.Func = c.fn
		c.declareSymbol(st.Sym)
		c.fn.Locals = append(c.fn.Locals, st.Sym)
		if st.Init != nil {
			if m, ok := st.Init.(*MallocExpr); ok && st.Sym.Type.Kind == KindPointer {
				m.Elem = st.Sym.Type.Elem
			}
			if err := c.checkExpr(st.Init); err != nil {
				return err
			}
			if err := c.coerceAssign(st.Sym.Type, st.Init, st.Pos); err != nil {
				return err
			}
		}
		return c.bind(st.Sym)
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		if st.Value == nil {
			if c.fn.Ret.Kind != KindVoid {
				return c.errf(st.Pos, "function %s must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		if c.fn.Ret.Kind == KindVoid {
			return c.errf(st.Pos, "void function %s returns a value", c.fn.Name)
		}
		if err := c.checkExpr(st.Value); err != nil {
			return err
		}
		return c.coerceAssign(c.fn.Ret, st.Value, st.Pos)
	case *BreakStmt:
		if c.loop == 0 {
			return c.errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return c.errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *FreeStmt:
		if err := c.checkExpr(st.Ptr); err != nil {
			return err
		}
		if st.Ptr.ExprType().Kind != KindPointer {
			return c.errf(st.Pos, "free requires a pointer, got %s", st.Ptr.ExprType())
		}
		return nil
	case *PragmaStmt:
		if st.Body == nil {
			return nil
		}
		if err := c.validatePragmaBody(st); err != nil {
			return err
		}
		return c.checkStmt(st.Body)
	}
	return c.errf(s.NodePos(), "unhandled statement %T", s)
}

func (c *checker) validatePragmaBody(st *PragmaStmt) error {
	switch st.Pragma.Kind {
	case PragmaOmpParallelFor:
		if _, ok := st.Body.(*ForStmt); !ok {
			return c.errf(st.Pos, "'#pragma omp parallel for' must precede a for loop")
		}
	case PragmaOmpParallelSections:
		blk, ok := st.Body.(*BlockStmt)
		if !ok {
			return c.errf(st.Pos, "'#pragma omp parallel sections' must precede a block")
		}
		for _, sub := range blk.Stmts {
			ps, ok := sub.(*PragmaStmt)
			if !ok || ps.Pragma.Kind != PragmaOmpSection {
				return c.errf(sub.NodePos(), "parallel sections block may contain only '#pragma omp section' statements")
			}
		}
	}
	return nil
}

func (c *checker) checkCond(e Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	t := e.ExprType()
	if !t.IsNumeric() && t.Kind != KindPointer && t.Kind != KindFnPtr {
		return c.errf(e.NodePos(), "condition must be numeric or pointer, got %s", t)
	}
	return nil
}

// coerceAssign verifies that an expression of the checked value's type can
// be stored into dst. Numeric types convert implicitly; pointers require a
// matching pointee except for malloc results, which adopt the destination.
func (c *checker) coerceAssign(dst *Type, val Expr, pos Pos) error {
	src := val.ExprType()
	if dst.Kind == KindArray || dst.Kind == KindStruct {
		return c.errf(pos, "aggregate assignment is not supported; copy elements/fields instead")
	}
	if dst.Equal(src) {
		return nil
	}
	if dst.IsNumeric() && src.IsNumeric() {
		return nil
	}
	if dst.Kind == KindPointer && src.Kind == KindPointer {
		if m, ok := val.(*MallocExpr); ok {
			m.Elem = dst.Elem
			m.setType(PointerTo(dst.Elem))
			return nil
		}
		return c.errf(pos, "cannot assign %s to %s", src, dst)
	}
	// Arrays decay to a pointer to their element type.
	if dst.Kind == KindPointer && src.Kind == KindArray && dst.Elem.Equal(src.Elem) {
		return nil
	}
	// Null pointer constant.
	if dst.Kind == KindPointer || dst.Kind == KindFnPtr {
		if lit, ok := val.(*IntLit); ok && lit.Value == 0 {
			return nil
		}
	}
	return c.errf(pos, "cannot assign %s to %s", src, dst)
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		x.setType(TypeInt)
		return nil
	case *FloatLit:
		x.setType(TypeFloat)
		return nil
	case *SizeofExpr:
		x.setType(TypeInt)
		return nil
	case *MallocExpr:
		if err := c.checkExpr(x.Count); err != nil {
			return err
		}
		if !x.Count.ExprType().IsNumeric() {
			return c.errf(x.Pos, "malloc count must be numeric")
		}
		if x.Elem == nil {
			x.Elem = TypeInt
		}
		x.setType(PointerTo(x.Elem))
		return nil
	case *Ident:
		if sym := c.lookup(x.Name); sym != nil {
			x.Sym = sym
			x.setType(sym.Type)
			return nil
		}
		if fn := c.file.FuncByName(x.Name); fn != nil {
			x.FuncRef = fn
			x.setType(TypeFnPtr)
			return nil
		}
		if ext := c.file.ExternByName(x.Name); ext != nil {
			x.ExternRef = ext
			x.setType(TypeFnPtr)
			return nil
		}
		return c.errf(x.Pos, "undefined name %q", x.Name)
	case *Unary:
		return c.checkUnary(x)
	case *Binary:
		return c.checkBinary(x)
	case *Assign:
		return c.checkAssignExpr(x)
	case *IncDec:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if !c.isLValue(x.X) {
			return c.errf(x.Pos, "++/-- requires an lvalue")
		}
		t := x.X.ExprType()
		if t.Kind != KindInt && t.Kind != KindPointer {
			return c.errf(x.Pos, "++/-- requires int or pointer, got %s", t)
		}
		x.setType(t)
		return nil
	case *Call:
		return c.checkCall(x)
	case *Index:
		if err := c.checkExpr(x.Base); err != nil {
			return err
		}
		if err := c.checkExpr(x.Idx); err != nil {
			return err
		}
		if x.Idx.ExprType().Kind != KindInt {
			return c.errf(x.Pos, "array index must be int, got %s", x.Idx.ExprType())
		}
		bt := x.Base.ExprType()
		switch bt.Kind {
		case KindArray, KindPointer:
			x.setType(bt.Elem)
		default:
			return c.errf(x.Pos, "cannot index %s", bt)
		}
		if bt.Kind == KindArray {
			c.markAddressTaken(x.Base)
		}
		return nil
	case *Member:
		if err := c.checkExpr(x.Base); err != nil {
			return err
		}
		bt := x.Base.ExprType()
		var st *StructType
		if x.Arrow {
			if bt.Kind != KindPointer || bt.Elem.Kind != KindStruct {
				return c.errf(x.Pos, "-> requires a struct pointer, got %s", bt)
			}
			st = bt.Elem.Struct
		} else {
			if bt.Kind != KindStruct {
				return c.errf(x.Pos, ". requires a struct, got %s", bt)
			}
			st = bt.Struct
		}
		fld := st.FieldByName(x.Name)
		if fld == nil {
			return c.errf(x.Pos, "struct %s has no field %q", st.Name, x.Name)
		}
		x.Field = fld
		x.setType(fld.Type)
		if !x.Arrow {
			c.markAddressTaken(x.Base)
		}
		return nil
	}
	return c.errf(e.NodePos(), "unhandled expression %T", e)
}

func (c *checker) checkUnary(x *Unary) error {
	if err := c.checkExpr(x.X); err != nil {
		return err
	}
	t := x.X.ExprType()
	switch x.Op {
	case UnaryNeg:
		if !t.IsNumeric() {
			return c.errf(x.Pos, "unary - requires numeric operand, got %s", t)
		}
		x.setType(t)
	case UnaryNot:
		if !t.IsNumeric() && t.Kind != KindPointer && t.Kind != KindFnPtr {
			return c.errf(x.Pos, "! requires scalar operand, got %s", t)
		}
		x.setType(TypeInt)
	case UnaryDeref:
		if t.Kind != KindPointer {
			return c.errf(x.Pos, "* requires a pointer, got %s", t)
		}
		x.setType(t.Elem)
	case UnaryAddr:
		if !c.isLValue(x.X) {
			return c.errf(x.Pos, "& requires an lvalue")
		}
		c.markAddressTaken(x.X)
		x.setType(PointerTo(t))
	}
	return nil
}

func (c *checker) checkBinary(x *Binary) error {
	if err := c.checkExpr(x.L); err != nil {
		return err
	}
	if err := c.checkExpr(x.R); err != nil {
		return err
	}
	lt, rt := x.L.ExprType(), x.R.ExprType()
	switch x.Op {
	case BinAnd, BinOr:
		x.setType(TypeInt)
		return nil
	case BinEq, BinNe, BinLt, BinLe, BinGt, BinGe:
		if lt.IsNumeric() && rt.IsNumeric() {
			x.setType(TypeInt)
			return nil
		}
		if lt.Kind == rt.Kind && (lt.Kind == KindPointer || lt.Kind == KindFnPtr) {
			x.setType(TypeInt)
			return nil
		}
		// pointer ==/!= 0
		if (lt.Kind == KindPointer || lt.Kind == KindFnPtr) && rt.Kind == KindInt {
			x.setType(TypeInt)
			return nil
		}
		if (rt.Kind == KindPointer || rt.Kind == KindFnPtr) && lt.Kind == KindInt {
			x.setType(TypeInt)
			return nil
		}
		return c.errf(x.Pos, "invalid comparison between %s and %s", lt, rt)
	case BinAdd, BinSub:
		if lt.Kind == KindPointer && rt.Kind == KindInt {
			x.setType(lt)
			return nil
		}
		if x.Op == BinAdd && lt.Kind == KindInt && rt.Kind == KindPointer {
			x.setType(rt)
			return nil
		}
		if lt.Kind == KindPointer && rt.Kind == KindPointer && x.Op == BinSub {
			x.setType(TypeInt)
			return nil
		}
		fallthrough
	case BinMul, BinDiv:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return c.errf(x.Pos, "operator %s requires numeric operands, got %s and %s", x.Op, lt, rt)
		}
		if lt.Kind == KindFloat || rt.Kind == KindFloat {
			x.setType(TypeFloat)
		} else {
			x.setType(TypeInt)
		}
		return nil
	case BinRem:
		if lt.Kind != KindInt || rt.Kind != KindInt {
			return c.errf(x.Pos, "%% requires int operands, got %s and %s", lt, rt)
		}
		x.setType(TypeInt)
		return nil
	}
	return c.errf(x.Pos, "unhandled binary operator")
}

func (c *checker) checkAssignExpr(x *Assign) error {
	if err := c.checkExpr(x.LHS); err != nil {
		return err
	}
	if !c.isLValue(x.LHS) {
		return c.errf(x.Pos, "left side of %s is not an lvalue", x.Op)
	}
	lt := x.LHS.ExprType()
	if m, ok := x.RHS.(*MallocExpr); ok && lt.Kind == KindPointer {
		m.Elem = lt.Elem
	}
	if err := c.checkExpr(x.RHS); err != nil {
		return err
	}
	if x.Op != AssignSet {
		rt := x.RHS.ExprType()
		if lt.Kind == KindPointer && (x.Op == AssignAdd || x.Op == AssignSub) && rt.Kind == KindInt {
			x.setType(lt)
			return nil
		}
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return c.errf(x.Pos, "operator %s requires numeric operands, got %s and %s", x.Op, lt, rt)
		}
		x.setType(lt)
		return nil
	}
	if err := c.coerceAssign(lt, x.RHS, x.Pos); err != nil {
		return err
	}
	x.setType(lt)
	return nil
}

func (c *checker) checkCall(x *Call) error {
	// Direct call through a bare identifier naming a function or extern.
	if id, ok := x.Callee.(*Ident); ok {
		if sym := c.lookup(id.Name); sym == nil {
			if fn := c.file.FuncByName(id.Name); fn != nil {
				x.Func = fn
				return c.checkCallArgs(x, fn.Ret, paramTypes(fn.Params))
			}
			if ext := c.file.ExternByName(id.Name); ext != nil {
				x.Extern = ext
				return c.checkCallArgs(x, ext.Ret, paramTypes(ext.Params))
			}
			return c.errf(id.Pos, "undefined function %q", id.Name)
		}
	}
	// Indirect call through an fnptr expression.
	if err := c.checkExpr(x.Callee); err != nil {
		return err
	}
	if x.Callee.ExprType().Kind != KindFnPtr {
		return c.errf(x.Pos, "called value is not a function (type %s)", x.Callee.ExprType())
	}
	for _, a := range x.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	// Indirect calls are dynamically checked; static result type is int
	// unless context coerces (we model fnptr targets as int-returning or
	// void; richer signatures go through direct calls).
	x.setType(TypeInt)
	return nil
}

func paramTypes(params []*Symbol) []*Type {
	ts := make([]*Type, len(params))
	for i, p := range params {
		ts[i] = p.Type
	}
	return ts
}

func (c *checker) checkCallArgs(x *Call, ret *Type, params []*Type) error {
	if len(x.Args) != len(params) {
		return c.errf(x.Pos, "call has %d arguments, want %d", len(x.Args), len(params))
	}
	for i, a := range x.Args {
		if m, ok := a.(*MallocExpr); ok && params[i].Kind == KindPointer {
			m.Elem = params[i].Elem
		}
		if err := c.checkExpr(a); err != nil {
			return err
		}
		if err := c.coerceAssign(params[i], a, a.NodePos()); err != nil {
			return err
		}
	}
	x.setType(ret)
	return nil
}

// isLValue reports whether e designates a storage location.
func (c *checker) isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Sym != nil
	case *Unary:
		return x.Op == UnaryDeref
	case *Index:
		return true
	case *Member:
		return true
	}
	return false
}

// markAddressTaken records that the base symbol of an lvalue chain has its
// address materialized (arrays indexed, structs membered, &x). Such
// symbols cannot be promoted by selective mem2reg unless proven safe.
func (c *checker) markAddressTaken(e Expr) {
	switch x := e.(type) {
	case *Ident:
		if x.Sym != nil {
			x.Sym.AddressTaken = true
		}
	case *Index:
		if x.Base.ExprType() != nil && x.Base.ExprType().Kind == KindArray {
			c.markAddressTaken(x.Base)
		}
	case *Member:
		if !x.Arrow {
			c.markAddressTaken(x.Base)
		}
	}
}

package interp

// The bytecode compiler. Each ir.Func is translated once, on first call,
// into a flat []bcInstr stream the switch-dispatch loop in bc.go executes
// with no interface dispatch and no per-instruction ir.Base calls. The
// translation runs in three passes:
//
//  1. Generation: one bytecode word per IR instruction, in block order.
//     Everything the tree-walker resolves per execution is resolved here
//     per compilation: operand kinds become (mode, payload) pairs,
//     constants and global/function addresses fold to immediates, alloca
//     frame offsets and allocation metadata are precomputed, and call
//     sites pre-bind their callee (or pre-classify as indirect). The
//     planner's per-instruction trackability decision (ir.TrackMode) is
//     compiled into the opcode itself: a load inside an ROI becomes
//     opLoadT (unconditional event emission), everything else becomes
//     opLoadU, which carries no emit branch, no runtime check, and no
//     event construction at all. The §4.4 TrackAggregated/TrackFixed
//     decisions already lower to their own opcodes (opRanged/opFixed), so
//     after this pass no opcode ever consults a track flag on the access
//     path.
//
//  2. Fusion: a peephole pass (see fuse.go) rewrites the dominant
//     adjacent pairs — compare+branch, index+load, index+store — into
//     single superinstruction words with pre-resolved operands. Branch
//     targets only ever name block starts, so any adjacent pair within a
//     block is safe to fuse; the pass remaps branch targets afterwards.
//
//  3. Patching: branch targets resolve to post-fusion instruction
//     indexes.
//
// Every observable counter (steps, cycles, serial cycles, tool cycles,
// access tallies) advances exactly as it does in the tree-walker — fused
// words perform the step/budget bookkeeping of both halves — which is
// what makes the two engines differentiable bit-for-bit.

import (
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/native"
	"carmot/internal/rt"

	"carmot/internal/core"
)

type bcOp uint8

const (
	opAlloca bcOp = iota
	// Trackability-specialized memory accesses: the U variants execute
	// zero instrumentation instructions, the T variants emit
	// unconditionally (the runtime's presence and the planner's TrackOn
	// are both compile-time facts for a given Interp).
	opLoadU
	opLoadT
	opStoreU
	opStoreT
	opAddI
	opSubI
	opMulI
	opDivI
	opRemI
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opAddF
	opSubF
	opMulF
	opDivF
	opEqF
	opNeF
	opLtF
	opLeF
	opGtF
	opGeF
	opConvItoF
	opConvFtoI
	opGEP
	opMalloc
	opFree
	opCall
	opRet
	opJmp
	opCondJmp
	opROIBegin
	opROIEnd
	opMark
	opRanged
	opFixed
	// opBadOp reproduces the tree-walker's runtime error for an
	// instruction it cannot execute ("bad float op", unhandled kinds);
	// the error fires only if the instruction is actually reached.
	opBadOp
	// Superinstructions (fuse.go). Each fused word executes both halves
	// with the exact step/cost/budget bookkeeping of the unfused pair.
	// opFJmp<Cmp><I|F>: integer/float compare + conditional branch.
	opFJmpEqI
	opFJmpNeI
	opFJmpLtI
	opFJmpLeI
	opFJmpGtI
	opFJmpGeI
	opFJmpEqF
	opFJmpNeF
	opFJmpLtF
	opFJmpLeF
	opFJmpGtF
	opFJmpGeF
	// opFGEPLoad/Store<U|T>: address computation + the memory access it
	// feeds, in both trackability variants.
	opFGEPLoadU
	opFGEPLoadT
	opFGEPStoreU
	opFGEPStoreT
	// opFLoadLoadU: two adjacent untracked loads (the second may consume
	// the first's temp — it is fetched after the first lands).
	opFLoadLoadU
	// opFLoadBin: untracked load + any binary op; the bin opcode and its
	// cost ride in imm.
	opFLoadBin
	// opFBinStoreU: binary op + untracked store of its result.
	opFBinStoreU
	// opFStoreUJmp: untracked store followed by an unconditional jump —
	// the classic loop-bottom shape (write the result, branch back).
	opFStoreUJmp

	nOps // sentinel: number of opcodes
)

// opNames mirrors the opcode constants for the dispatch-counter report.
var opNames = [nOps]string{
	opAlloca: "alloca",
	opLoadU:  "load.u", opLoadT: "load.t",
	opStoreU: "store.u", opStoreT: "store.t",
	opAddI: "add.i", opSubI: "sub.i", opMulI: "mul.i", opDivI: "div.i", opRemI: "rem.i",
	opEqI: "eq.i", opNeI: "ne.i", opLtI: "lt.i", opLeI: "le.i", opGtI: "gt.i", opGeI: "ge.i",
	opAddF: "add.f", opSubF: "sub.f", opMulF: "mul.f", opDivF: "div.f",
	opEqF: "eq.f", opNeF: "ne.f", opLtF: "lt.f", opLeF: "le.f", opGtF: "gt.f", opGeF: "ge.f",
	opConvItoF: "itof", opConvFtoI: "ftoi",
	opGEP: "gep", opMalloc: "malloc", opFree: "free",
	opCall: "call", opRet: "ret", opJmp: "jmp", opCondJmp: "condjmp",
	opROIBegin: "roi.begin", opROIEnd: "roi.end", opMark: "mark",
	opRanged: "ranged", opFixed: "fixed", opBadOp: "badop",
	opFJmpEqI: "jmp.eq.i", opFJmpNeI: "jmp.ne.i", opFJmpLtI: "jmp.lt.i",
	opFJmpLeI: "jmp.le.i", opFJmpGtI: "jmp.gt.i", opFJmpGeI: "jmp.ge.i",
	opFJmpEqF: "jmp.eq.f", opFJmpNeF: "jmp.ne.f", opFJmpLtF: "jmp.lt.f",
	opFJmpLeF: "jmp.le.f", opFJmpGtF: "jmp.gt.f", opFJmpGeF: "jmp.ge.f",
	opFGEPLoadU: "gep+load.u", opFGEPLoadT: "gep+load.t",
	opFGEPStoreU: "gep+store.u", opFGEPStoreT: "gep+store.t",
	opFLoadLoadU: "load+load.u", opFLoadBin: "load+bin",
	opFBinStoreU: "bin+store.u", opFStoreUJmp: "store.u+jmp",
}

// bcInstr flag bits.
const (
	bfSerial   uint16 = 1 << iota // cost also accrues to serialCycles
	bfTrack                       // instrumentation fires (alloca/malloc/free only)
	bfSym                         // load/store names a variable (access tallies)
	bfPtrStore                    // store may create a reachability edge
	bfHasB                        // optional second operand present (GEP index, Ret value)
	bfWrite                       // ranged event is a write
	bfSerialB                     // fused word: second half's cost is serial
	bfSets                        // tracked store emits an access event (profile.Sets)
	bfEscape                      // tracked ptr-store emits an escape (profile.Reach)
	bfSymB                        // fused word: second half's access names a variable
)

// Operand addressing modes: how a bcInstr's a/b/c payload resolves.
const (
	opdImm   uint8 = iota // payload is the value (consts, globals, fnptrs)
	opdTemp               // payload indexes the frame's temps
	opdArg                // payload indexes the frame's args
	opdFrame              // payload is an offset from the frame's alloca base
)

// bcInstr is one fixed-width bytecode word. Operands a, b, and c carry
// their addressing mode beside them (c exists for three-operand
// superinstructions like gep+store); imm/imm2 are pre-folded immediates
// whose meaning is per-opcode (branch targets, scales, cell counts); ext
// indexes the side tables on compiledFunc for the cold payloads
// (allocation metadata, call specs, ROIs, markers, fusion records).
type bcInstr struct {
	a     uint64
	b     uint64
	c     uint64
	imm   int64
	imm2  int64
	dst   int32
	site  int32
	ext   int32
	cost  int32
	op    bcOp
	amode uint8
	bmode uint8
	cmode uint8
	flags uint16
}

// opdSpec is a pre-resolved operand in a side table (call arguments).
type opdSpec struct {
	mode uint8
	val  uint64
}

// callSpec is one pre-bound call site, including its monomorphic inline
// caches: direct sites cache the callee's layout, compiled code, and
// native spec on first execution; indirect sites cache the last resolved
// function-pointer value and fall back to the generic decode on mismatch.
type callSpec struct {
	x        *ir.Call
	args     []opdSpec
	target   *ir.Func   // direct MiniC callee
	extern   *ir.Extern // direct native callee
	callee   opdSpec    // evaluated when indirect
	indirect bool
	pinGated bool
	void     bool
	pos      lang.Pos

	// Direct-site caches (filled on first execution, stable after).
	dLay   *funcLayout
	dCF    *compiledFunc
	dNspec *native.Spec
	// Indirect-site monomorphic cache, keyed by the raw pointer value.
	icID    uint64
	icFn    *ir.Func
	icExt   *ir.Extern
	icLay   *funcLayout
	icCF    *compiledFunc
	icNspec *native.Spec
}

// mallocSpec carries a malloc site's precomputed identity.
type mallocSpec struct {
	pos  string
	meta *rt.AllocMeta // nil when the site is untracked
}

// fuseInfo is the cold half of a superinstruction: the second
// instruction's source position (runtime errors must report it, not the
// first's) and the first instruction's destination temp, which the fused
// word still writes so later readers observe the same frame state as in
// the unfused stream.
type fuseInfo struct {
	posB lang.Pos
	dstA int32
}

// compiledFunc is one function's bytecode plus its cold side tables.
type compiledFunc struct {
	fn      *ir.Func
	code    []bcInstr
	poss    []lang.Pos      // source position per pc (runtime errors)
	allocas []*rt.AllocMeta // opAlloca ext (nil when untracked)
	mallocs []mallocSpec    // opMalloc ext
	calls   []callSpec      // opCall ext
	rois    []*ir.ROI       // opROIBegin/opROIEnd ext
	marks   []*ir.Mark      // opMark ext
	msgs    []string        // opBadOp ext
	fused   []fuseInfo      // superinstruction ext
	hits    []uint64        // per-pc dispatch tally (Options.CountDispatch)
}

func (it *Interp) compiledOf(fn *ir.Func) *compiledFunc {
	if cf, ok := it.compiled[fn]; ok {
		return cf
	}
	cf := it.compile(fn)
	it.compiled[fn] = cf
	return cf
}

// operand lowers an ir.Value exactly as eval resolves it at runtime.
func (it *Interp) operand(lay *funcLayout, v ir.Value) opdSpec {
	switch x := v.(type) {
	case *ir.Const:
		return opdSpec{opdImm, constBits(x)}
	case *ir.Alloca:
		return opdSpec{opdFrame, lay.offsets[x.Index]}
	case *ir.GlobalAddr:
		return opdSpec{opdImm, it.globalOff[x.Global]}
	case *ir.Param:
		return opdSpec{opdArg, uint64(x.Index)}
	case *ir.FuncRef:
		return opdSpec{opdImm, it.fnptrOf(x)}
	}
	if in, ok := v.(ir.Instr); ok {
		return opdSpec{opdTemp, uint64(ir.Base(in).Temp)}
	}
	panic("interp: unknown value kind")
}

var intOps = map[ir.BinOp]bcOp{
	ir.OpAdd: opAddI, ir.OpSub: opSubI, ir.OpMul: opMulI,
	ir.OpDiv: opDivI, ir.OpRem: opRemI,
	ir.OpEq: opEqI, ir.OpNe: opNeI, ir.OpLt: opLtI,
	ir.OpLe: opLeI, ir.OpGt: opGtI, ir.OpGe: opGeI,
}

var floatOps = map[ir.BinOp]bcOp{
	ir.OpAdd: opAddF, ir.OpSub: opSubF, ir.OpMul: opMulF,
	ir.OpDiv: opDivF,
	ir.OpEq: opEqF, ir.OpNe: opNeF, ir.OpLt: opLtF,
	ir.OpLe: opLeF, ir.OpGt: opGtF, ir.OpGe: opGeF,
}

func (it *Interp) compile(fn *ir.Func) *compiledFunc {
	lay := it.layouts[fn]
	cf := &compiledFunc{fn: fn}
	tracked := it.opts.Runtime != nil // instrumentation can fire at all
	blockPC := map[*ir.Block]int{}
	type patch struct {
		pc   int
		a, b *ir.Block // Br target, or CondBr true/false
	}
	var patches []patch

	setA := func(bi *bcInstr, v ir.Value) {
		o := it.operand(lay, v)
		bi.amode, bi.a = o.mode, o.val
	}
	setB := func(bi *bcInstr, v ir.Value) {
		o := it.operand(lay, v)
		bi.bmode, bi.b = o.mode, o.val
	}

	for _, blk := range fn.Blocks {
		blockPC[blk] = len(cf.code)
		for _, in := range blk.Instrs {
			base := ir.Base(in)
			bi := bcInstr{dst: int32(base.Temp), site: base.Site, ext: -1}
			if base.Serial {
				bi.flags |= bfSerial
			}
			emit := tracked && base.Track == ir.TrackOn

			switch x := in.(type) {
			case *ir.Alloca:
				bi.op = opAlloca
				bi.cost = costAlloca
				bi.a = lay.offsets[x.Index]
				bi.imm = int64(x.Cells)
				if emit {
					bi.flags |= bfTrack
					kind := core.PSEStackMem
					if x.Sym != nil && x.Sym.Type.IsScalar() {
						kind = core.PSEVariable
					}
					name := "<tmp>"
					pos := base.Pos
					if x.Sym != nil {
						name = x.Sym.Name
						pos = x.Sym.Pos
					}
					bi.ext = int32(len(cf.allocas))
					cf.allocas = append(cf.allocas, &rt.AllocMeta{Kind: kind, Name: name, Pos: pos.String()})
				}

			case *ir.Load:
				bi.op = opLoadU
				if emit {
					bi.op = opLoadT
				}
				bi.cost = costLoad
				setA(&bi, x.Addr)
				if x.Sym != nil {
					bi.flags |= bfSym
				}

			case *ir.Store:
				// A tracked store only performs work when the profile
				// records Sets (access events) or Reach through a pointer
				// store (escape events); both are compile-time facts, so a
				// store that would emit nothing compiles untracked.
				if emit && it.prof.Sets {
					bi.flags |= bfSets
				}
				if emit && it.prof.Reach && x.PtrStore {
					bi.flags |= bfEscape
				}
				bi.op = opStoreU
				if bi.flags&(bfSets|bfEscape) != 0 {
					bi.op = opStoreT
				}
				bi.cost = costStore
				setA(&bi, x.Addr)
				setB(&bi, x.Val)
				if x.Sym != nil {
					bi.flags |= bfSym
				}
				if x.PtrStore {
					bi.flags |= bfPtrStore
				}

			case *ir.Bin:
				ops, bad := intOps, "bad int op"
				bi.cost = costBin
				if x.Float {
					ops, bad = floatOps, "bad float op"
				}
				if x.Op == ir.OpDiv || x.Op == ir.OpRem {
					bi.cost = costDivBin
				}
				op, ok := ops[x.Op]
				if !ok {
					bi.op = opBadOp
					bi.ext = int32(len(cf.msgs))
					cf.msgs = append(cf.msgs, bad)
					break
				}
				bi.op = op
				setA(&bi, x.L)
				setB(&bi, x.R)

			case *ir.Convert:
				if x.ToFloat {
					bi.op = opConvItoF
				} else {
					bi.op = opConvFtoI
				}
				bi.cost = costConvert
				setA(&bi, x.X)

			case *ir.GEP:
				bi.op = opGEP
				bi.cost = costGEP
				setA(&bi, x.Base)
				if x.Index != nil {
					bi.flags |= bfHasB
					setB(&bi, x.Index)
				}
				bi.imm = x.Scale
				bi.imm2 = x.Offset

			case *ir.Malloc:
				bi.op = opMalloc
				bi.cost = costMalloc
				setA(&bi, x.Count)
				bi.imm = x.ElemCells
				ms := mallocSpec{pos: base.Pos.String()}
				if emit {
					bi.flags |= bfTrack
					name := x.Hint
					if name == "" {
						name = "heap<" + x.TypeName + ">"
					}
					ms.meta = &rt.AllocMeta{Kind: core.PSEHeap, Name: name, Pos: ms.pos}
				}
				bi.ext = int32(len(cf.mallocs))
				cf.mallocs = append(cf.mallocs, ms)

			case *ir.Free:
				bi.op = opFree
				bi.cost = costFree
				setA(&bi, x.Ptr)
				if emit {
					bi.flags |= bfTrack
				}

			case *ir.Call:
				bi.op = opCall
				bi.cost = costCall
				spec := callSpec{x: x, pinGated: x.PinGated, void: x.Cls == ir.ClassVoid, pos: base.Pos}
				for _, a := range x.Args {
					spec.args = append(spec.args, it.operand(lay, a))
				}
				if fref := x.DirectTarget(); fref != nil {
					spec.target, spec.extern = fref.Func, fref.Extern
				} else {
					spec.indirect = true
					spec.callee = it.operand(lay, x.Callee)
				}
				bi.ext = int32(len(cf.calls))
				cf.calls = append(cf.calls, spec)

			case *ir.Ret:
				bi.op = opRet
				bi.cost = costRet
				if x.Val != nil {
					bi.flags |= bfHasB
					setA(&bi, x.Val)
				}

			case *ir.Br:
				bi.op = opJmp
				bi.cost = costBr
				patches = append(patches, patch{pc: len(cf.code), a: x.Target})

			case *ir.CondBr:
				bi.op = opCondJmp
				bi.cost = costBr
				setA(&bi, x.Cond)
				patches = append(patches, patch{pc: len(cf.code), a: x.True, b: x.False})

			case *ir.ROIBegin:
				bi.op = opROIBegin
				bi.ext = int32(len(cf.rois))
				cf.rois = append(cf.rois, x.ROI)

			case *ir.ROIEnd:
				bi.op = opROIEnd
				bi.ext = int32(len(cf.rois))
				cf.rois = append(cf.rois, x.ROI)

			case *ir.Mark:
				bi.op = opMark
				bi.ext = int32(len(cf.marks))
				cf.marks = append(cf.marks, x)

			case *ir.RangedEvent:
				bi.op = opRanged
				setA(&bi, x.Base)
				setB(&bi, x.Count)
				bi.imm = x.Stride
				bi.dst = int32(x.ROI.ID)
				if x.IsWrite {
					bi.flags |= bfWrite
				}

			case *ir.FixedClass:
				bi.op = opFixed
				setA(&bi, x.Base)
				bi.imm = x.Cells
				bi.imm2 = int64(x.Sets)
				bi.dst = int32(x.ROI.ID)

			default:
				bi.op = opBadOp
				bi.ext = int32(len(cf.msgs))
				cf.msgs = append(cf.msgs, "interp: unhandled instruction "+in.Mnemonic())
			}

			cf.poss = append(cf.poss, base.Pos)
			cf.code = append(cf.code, bi)
		}
	}

	// Fusion rewrites the stream and remaps every old pc; branch patches
	// and block starts are expressed in old pcs until then.
	oldToNew := it.fuse(cf, blockPC)

	for _, p := range patches {
		w := &cf.code[oldToNew[p.pc]]
		w.imm = int64(oldToNew[blockPC[p.a]])
		if p.b != nil {
			w.imm2 = int64(oldToNew[blockPC[p.b]])
		}
	}
	if it.opts.CountDispatch {
		cf.hits = make([]uint64, len(cf.code))
	}
	return cf
}

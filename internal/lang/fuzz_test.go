package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds covers the grammar surface: declarations, pragmas, control
// flow, pointers/arrays, structs, and deliberately malformed inputs.
var fuzzSeeds = []string{
	"int main() { return 0; }\n",
	`int N = 16;
float* a;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float total = 0.0;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		total = total + a[i] * 2.0;
	}
	return total;
}
`,
	`struct node { int val; struct node* next; };
int main() {
	struct node* head = malloc(1);
	head->val = 3;
	head->next = head;
	#pragma carmot roi walk
	while (head->val > 0) { head->val = head->val - 1; }
	free(head);
	return 0;
}
`,
	`int hits = 0;
int main() {
	int data = 7;
	#pragma stats input(data) output(hits) state(data)
	{
		if (data > 3) { hits = hits + 1; }
	}
	return hits;
}
`,
	`int main() {
	int s = 0;
	#pragma omp parallel for
	for (int i = 0; i < 8; i++) { s = s + i; }
	return s;
}
`,
	"int main() { if (1) { return 1; } else { return 2; } }\n",
	"int main() { int x = (((((1))))); return x; }\n",
	"int main() { return \"unterminated; }\n",
	"int main() { /* unclosed comment\n",
	"#pragma carmot roi\nint main() { return 0; }\n",
	"int f(int a, float b) { return a; } int main() { return f(1, 2.0); }\n",
	"int main() { int a[4]; a[0] = 1; return a[0]; }\n",
	"\x00\xff int main ( } {",
}

// FuzzParseAndCheck asserts the front end never panics: any input must
// either parse+check cleanly or come back as an error value.
func FuzzParseAndCheck(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Deep expression/statement nesting is rejected by ParseAndCheck
		// via the parser's depth limit, so even pathological inputs must
		// return normally here.
		file, err := ParseAndCheck("fuzz.mc", src)
		if err == nil && file == nil {
			t.Fatal("nil file with nil error")
		}
	})
}

// FuzzLexer drives the token stream directly, including inputs with NUL
// bytes and truncated literals.
func FuzzLexer(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Add(strings.Repeat("(", 4096))
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := NewLexer("fuzz.mc", src).Tokenize()
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream not EOF-terminated (%d tokens)", len(toks))
		}
	})
}

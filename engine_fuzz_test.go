package carmot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// engineFuzzSeeds mirrors the front end's fuzz corpus (the lang package's
// grammar-surface seeds) plus engine-sensitive shapes: strided sweeps
// that coalesce, alternating-site accesses that don't, float arithmetic,
// and indirect calls through function pointers.
var engineFuzzSeeds = []string{
	"int main() { return 0; }\n",
	`int N = 16;
float* a;
void init() {
	a = malloc(N);
	for (int j = 0; j < N; j++) { a[j] = j; }
}
int main() {
	init();
	float total = 0.0;
	#pragma carmot roi hot
	for (int i = 0; i < N; i++) {
		total = total + a[i] * 2.0;
	}
	return total;
}
`,
	`struct node { int val; struct node* next; };
int main() {
	struct node* head = malloc(1);
	head->val = 3;
	head->next = head;
	#pragma carmot roi walk
	while (head->val > 0) { head->val = head->val - 1; }
	free(head);
	return 0;
}
`,
	`int hits = 0;
int main() {
	int data = 7;
	#pragma stats input(data) output(hits) state(data)
	{
		if (data > 3) { hits = hits + 1; }
	}
	return hits;
}
`,
	`int main() {
	int s = 0;
	#pragma omp parallel for
	for (int i = 0; i < 8; i++) { s = s + i; }
	return s;
}
`,
	"int main() { if (1) { return 1; } else { return 2; } }\n",
	"int main() { int x = (((((1))))); return x; }\n",
	"int f(int a, float b) { return a; } int main() { return f(1, 2.0); }\n",
	"int main() { int a[4]; a[0] = 1; return a[0]; }\n",
	`int* a;
int* b;
int main() {
	a = malloc(32);
	b = malloc(32);
	int s = 0;
	#pragma carmot roi mix
	for (int i = 0; i < 32; i++) { a[i] = b[31 - i]; s = s + a[i]; }
	return s;
}
`,
	`float g(float x) { return x / 3.0; }
int main() {
	float acc = 1.0;
	#pragma carmot roi fl
	for (int i = 1; i < 20; i++) { acc = acc * 1.5 - g(acc); }
	return acc;
}
`,
	"int main() { int* p; return p[0]; }\n",
	"int main() { int x = 5; int y = 0; return x / y; }\n",
	// Superinstruction-sensitive shapes: each exercises one family of
	// fused or specialized opcodes, so the differential fuzzer covers the
	// compiler's peephole rewrites, not just generic dispatch.
	`int main() {
	int a = 3; int b = 7; int n = 0;
	while (a < b) {
		if (a == n) { n = n + 2; }
		if (a != b) { a = a + 1; }
		if (n <= a) { n = n + 1; }
	}
	return n;
}
`,
	`int N = 64;
int* idx;
int* data;
int main() {
	idx = malloc(N);
	data = malloc(N);
	for (int i = 0; i < N; i++) { idx[i] = (i * 7) % 64; data[i] = i; }
	int s = 0;
	#pragma carmot roi gather
	for (int i = 0; i < N; i++) { s = s + data[idx[i]]; }
	return s;
}
`,
	`int main() {
	int acc = 0;
	int i = 0;
	while (i < 50) {
		acc = acc + i * 3;
		i = i + 1;
	}
	return acc;
}
`,
	`int add1(int x) { return x + 1; }
int dbl(int x) { return x + x; }
int main() {
	fnptr f = add1;
	int s = 0;
	for (int i = 0; i < 12; i++) {
		if (i - (i / 2) * 2 == 0) { f = add1; } else { f = dbl; }
		s = s + f(i);
	}
	return s;
}
`,
}

// FuzzEngineDifferential feeds arbitrary sources through the whole
// profiling pipeline under both execution engines (coalescing on for the
// bytecode engine, since that is the shipping default) and requires
// agreement on everything observable: PSEC bytes, the run summary, the
// diagnostics, and error text. Compile failures are skipped — the front
// end has its own fuzzers — and MaxSteps bounds runaway programs, which
// also fuzzes identical budget truncation.
func FuzzEngineDifferential(f *testing.F) {
	for _, seed := range engineFuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound interpreter work, not front-end robustness
		}
		prog, err := Compile("fuzz.mc", src, CompileOptions{WholeProgramROI: true})
		if err != nil {
			return
		}
		opts := ProfileOptions{UseCase: UseFull, MaxSteps: 200_000}

		opts.Engine = EngineTree
		opts.NoCoalesce = true
		refRes, refErr := prog.Profile(opts)

		opts.Engine = EngineBytecode
		opts.NoCoalesce = false
		bcRes, bcErr := prog.Profile(opts)

		if (refErr == nil) != (bcErr == nil) ||
			(refErr != nil && refErr.Error() != bcErr.Error()) {
			t.Fatalf("error mismatch\ntree:     %v\nbytecode: %v\nsource:\n%s", refErr, bcErr, src)
		}
		if (refRes == nil) != (bcRes == nil) {
			t.Fatalf("result presence mismatch (tree %v, bytecode %v)\nsource:\n%s",
				refRes != nil, bcRes != nil, src)
		}
		if refRes == nil {
			return
		}
		refPSEC, err := MarshalPSECs(refRes.PSECs)
		if err != nil {
			t.Fatalf("marshal tree PSECs: %v", err)
		}
		bcPSEC, err := MarshalPSECs(bcRes.PSECs)
		if err != nil {
			t.Fatalf("marshal bytecode PSECs: %v", err)
		}
		if !bytes.Equal(refPSEC, bcPSEC) {
			t.Fatalf("PSECs differ\ntree:\n%s\nbytecode:\n%s\nsource:\n%s", refPSEC, bcPSEC, src)
		}
		if (refRes.Run == nil) != (bcRes.Run == nil) ||
			(refRes.Run != nil && !reflect.DeepEqual(*refRes.Run, *bcRes.Run)) {
			t.Fatalf("run summary differs\ntree:     %+v\nbytecode: %+v\nsource:\n%s",
				refRes.Run, bcRes.Run, src)
		}
		if !reflect.DeepEqual(refRes.Diagnostics, bcRes.Diagnostics) {
			t.Fatalf("diagnostics differ\ntree:     %+v\nbytecode: %+v\nsource:\n%s",
				refRes.Diagnostics, bcRes.Diagnostics, src)
		}
	})
}

// TestEngineFuzzSeedCorpus keeps the seed corpus honest: at
// least one seed must compile and profile cleanly, and at least one must
// produce a runtime fault, so both fuzz branches stay exercised.
func TestEngineFuzzSeedCorpus(t *testing.T) {
	clean, faulted := 0, 0
	for _, src := range engineFuzzSeeds {
		prog, err := Compile("seed.mc", src, CompileOptions{WholeProgramROI: true})
		if err != nil {
			continue
		}
		if _, perr := prog.Profile(ProfileOptions{UseCase: UseFull, MaxSteps: 200_000}); perr != nil {
			faulted++
		} else {
			clean++
		}
	}
	if clean == 0 || faulted == 0 {
		t.Fatalf("seed corpus lost its balance: %d clean, %d faulted profiles", clean, faulted)
	}
	if strings.TrimSpace(engineFuzzSeeds[0]) == "" {
		t.Fatal("first seed must be a program")
	}
}

// Package recommend turns the PSEC of an ROI into programming-language
// abstraction recommendations (§3.2): OpenMP parallel for with the right
// attribute clauses plus critical/ordered advice, OpenMP task depend
// clauses, smart-pointer reference-cycle reports with weak-pointer
// suggestions, and the STATS Input-Output-State classification.
package recommend

import (
	"fmt"
	"sort"
	"strings"

	"carmot/internal/analysis"
	"carmot/internal/core"
	"carmot/internal/ir"
)

// Needs reports which PSEC components an abstraction requires — Table 1
// of the paper.
type Needs struct {
	Sets          bool
	UseCallstacks bool
	Reachability  bool
}

// Table1 maps each supported abstraction to its PSEC needs.
func Table1() map[string]Needs {
	return map[string]Needs{
		"OMP parallel for (and critical/ordered)": {Sets: true, UseCallstacks: true},
		"OMP task":       {Sets: true},
		"Smart Pointers": {Sets: true, Reachability: true},
		"STATS":          {Sets: true},
	}
}

// VarClause is one variable attribute in a parallel-for recommendation.
type VarClause struct {
	Name string
	Pos  string
}

// ReductionClause is one reduction(op:var) entry.
type ReductionClause struct {
	Op   string
	Name string
}

// CloneAdvice tells the programmer to clone a memory PSE per thread and
// index the clones with omp_get_thread_num() (§3.2).
type CloneAdvice struct {
	Name      string
	AllocPos  string
	Callstack string
	Cells     int
	Ranges    []core.CellRange // the Cloneable portion
}

// CriticalAdvice wraps the statements that access a non-reducible
// Transfer PSE in a critical or ordered section; the choice between the
// two is left to the programmer (§3.2).
type CriticalAdvice struct {
	PSE    string
	Ranges []core.CellRange // the Transfer cells (Figure 2: often tiny)
	// Statements lists the use sites (with their call stacks) that must
	// be inside the critical/ordered section.
	Statements []StatementRef
}

// StatementRef is a source statement plus the call stacks it ran under.
type StatementRef struct {
	Pos        string
	IsWrite    bool
	Callstacks []string
}

// ParallelFor is the recommendation for #pragma omp parallel for.
type ParallelFor struct {
	ROI          string
	Shared       []VarClause
	Private      []VarClause
	FirstPrivate []VarClause
	LastPrivate  []VarClause
	Reductions   []ReductionClause
	Clones       []CloneAdvice
	Criticals    []CriticalAdvice
	InductionVar string
	// Parallel is false when the recommendation cannot restore any
	// parallelism (everything is one big critical section).
	Parallel bool
}

// RecommendParallelFor builds the §3.2 parallel-for recommendation.
func RecommendParallelFor(psec *core.PSEC, roi *ir.ROI) *ParallelFor {
	rec := &ParallelFor{ROI: psec.ROI.Name, Parallel: true}
	var indVar string
	if roi != nil && roi.Loop != nil && roi.Loop.IndVar != nil {
		indVar = roi.Loop.IndVar.Name
		rec.InductionVar = indVar
	}
	var region *analysis.ROIRegion
	if roi != nil && roi.Func != nil {
		region = analysis.ComputeROIRegion(roi)
	}
	for _, e := range psec.Elements {
		name := e.PSE.Name
		if e.PSE.Kind == core.PSEVariable {
			cl := VarClause{Name: name, Pos: e.PSE.AllocPos}
			switch {
			case name == indVar:
				// The loop-governing induction variable is private by
				// construction of the pragma.
				rec.Private = append(rec.Private, cl)
			case e.Sets.Has(core.SetTransfer):
				if e.Reducible {
					rec.Reductions = append(rec.Reductions, ReductionClause{Op: e.Reduction, Name: name})
				} else {
					rec.Criticals = append(rec.Criticals, criticalFor(psec, e))
				}
			case e.Sets.Has(core.SetCloneable):
				priv := true
				if e.Sets.Has(core.SetInput) {
					rec.FirstPrivate = append(rec.FirstPrivate, cl)
					priv = false
				}
				if e.Sets.Has(core.SetOutput) && readAfterROI(region, name) {
					// §4.1's conservative assumption puts every written
					// PSE in Output; the clause only needs lastprivate
					// when the variable may actually be read after the
					// ROI (x and i in §2.2 are plain private).
					rec.LastPrivate = append(rec.LastPrivate, cl)
					priv = false
				}
				if priv {
					rec.Private = append(rec.Private, cl)
				}
			case e.Sets.Has(core.SetOutput):
				// Written by a single invocation: keep the final value
				// when it is live after the loop.
				if readAfterROI(region, name) {
					rec.LastPrivate = append(rec.LastPrivate, cl)
				} else {
					rec.Private = append(rec.Private, cl)
				}
			case e.Sets.Has(core.SetInput):
				rec.Shared = append(rec.Shared, cl)
			}
			continue
		}
		// Memory PSEs: per-range treatment (Figure 2).
		var cloneRanges, transferRanges []core.CellRange
		for _, r := range e.Ranges {
			if r.Sets.Has(core.SetCloneable) {
				cloneRanges = append(cloneRanges, r)
			}
			if r.Sets.Has(core.SetTransfer) {
				transferRanges = append(transferRanges, r)
			}
		}
		if len(cloneRanges) > 0 {
			rec.Clones = append(rec.Clones, CloneAdvice{
				Name: name, AllocPos: e.PSE.AllocPos,
				Callstack: psec.Callstacks.Format(e.PSE.AllocStack),
				Cells:     e.PSE.Cells, Ranges: cloneRanges,
			})
		}
		if len(transferRanges) > 0 {
			if e.Reducible {
				rec.Reductions = append(rec.Reductions, ReductionClause{Op: e.Reduction, Name: name})
			} else {
				adv := criticalFor(psec, e)
				adv.Ranges = transferRanges
				rec.Criticals = append(rec.Criticals, adv)
			}
		}
		if len(cloneRanges) == 0 && len(transferRanges) == 0 && e.Sets.Has(core.SetInput) {
			rec.Shared = append(rec.Shared, VarClause{Name: name, Pos: e.PSE.AllocPos})
		}
	}
	sortClauses(rec)
	return rec
}

// readAfterROI reports whether the named local variable may be read
// outside the ROI region (within the ROI's function). Unknown ROIs answer
// true conservatively.
func readAfterROI(region *analysis.ROIRegion, name string) bool {
	if region == nil {
		return true
	}
	readOutside := false
	region.ROI.Func.Instructions(func(in ir.Instr) bool {
		ld, ok := in.(*ir.Load)
		if !ok || ld.Sym == nil || ld.Sym.Name != name {
			return true
		}
		if !region.Contains(in) {
			readOutside = true
			return false
		}
		return true
	})
	return readOutside
}

func criticalFor(psec *core.PSEC, e *core.Element) CriticalAdvice {
	adv := CriticalAdvice{PSE: e.PSE.Name, Ranges: e.Ranges}
	for _, u := range e.UseSites {
		ref := StatementRef{Pos: u.Pos, IsWrite: u.IsWrite}
		for _, cs := range u.Callstacks {
			ref.Callstacks = append(ref.Callstacks, psec.Callstacks.Format(cs))
		}
		adv.Statements = append(adv.Statements, ref)
	}
	return adv
}

func sortClauses(rec *ParallelFor) {
	dedupe := func(s []VarClause) []VarClause {
		sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
		out := s[:0]
		for i, v := range s {
			if i == 0 || v.Name != s[i-1].Name {
				out = append(out, v)
			}
		}
		return out
	}
	rec.Shared = dedupe(rec.Shared)
	rec.Private = dedupe(rec.Private)
	rec.FirstPrivate = dedupe(rec.FirstPrivate)
	rec.LastPrivate = dedupe(rec.LastPrivate)
	sort.Slice(rec.Reductions, func(i, j int) bool { return rec.Reductions[i].Name < rec.Reductions[j].Name })
	reds := rec.Reductions[:0]
	for i, r := range rec.Reductions {
		if i == 0 || r.Name != rec.Reductions[i-1].Name {
			reds = append(reds, r)
		}
	}
	rec.Reductions = reds
	sort.Slice(rec.Clones, func(i, j int) bool { return rec.Clones[i].Name < rec.Clones[j].Name })
	sort.Slice(rec.Criticals, func(i, j int) bool { return rec.Criticals[i].PSE < rec.Criticals[j].PSE })
	// A variable can appear once per allocation call stack; a single
	// critical advice per PSE name suffices.
	crits := rec.Criticals[:0]
	for i, c := range rec.Criticals {
		if i == 0 || c.PSE != rec.Criticals[i-1].PSE {
			crits = append(crits, c)
		}
	}
	rec.Criticals = crits
}

// Pragma renders the recommended #pragma omp parallel for line.
func (rec *ParallelFor) Pragma() string {
	var b strings.Builder
	b.WriteString("#pragma omp parallel for")
	clause := func(kw string, vars []VarClause) {
		if len(vars) == 0 {
			return
		}
		names := make([]string, len(vars))
		for i, v := range vars {
			names[i] = v.Name
		}
		fmt.Fprintf(&b, " %s(%s)", kw, strings.Join(names, ", "))
	}
	clause("private", rec.Private)
	clause("firstprivate", rec.FirstPrivate)
	clause("lastprivate", rec.LastPrivate)
	clause("shared", rec.Shared)
	for _, r := range rec.Reductions {
		fmt.Fprintf(&b, " reduction(%s:%s)", r.Op, r.Name)
	}
	return b.String()
}

// Report renders the full human-readable recommendation.
func (rec *ParallelFor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recommendation for ROI %q:\n  %s\n", rec.ROI, rec.Pragma())
	for _, c := range rec.Clones {
		fmt.Fprintf(&b, "  clone per thread: %s (%d cells, allocated at %s via %s); index clones with omp_get_thread_num()\n",
			c.Name, c.Cells, c.AllocPos, c.Callstack)
		for _, r := range c.Ranges {
			fmt.Fprintf(&b, "    cloneable cells [%d,%d)\n", r.Lo, r.Hi)
		}
	}
	for _, c := range rec.Criticals {
		fmt.Fprintf(&b, "  wrap in '#pragma omp critical' or '#pragma omp ordered' (your choice): statements using %s\n", c.PSE)
		for _, r := range c.Ranges {
			if r.Sets.Has(core.SetTransfer) {
				fmt.Fprintf(&b, "    RAW-carried cells [%d,%d)\n", r.Lo, r.Hi)
			}
		}
		for _, s := range c.Statements {
			kind := "read"
			if s.IsWrite {
				kind = "write"
			}
			fmt.Fprintf(&b, "    %s at %s", kind, s.Pos)
			if len(s.Callstacks) > 0 {
				fmt.Fprintf(&b, " [via %s]", strings.Join(s.Callstacks, "; "))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Task is the recommendation for #pragma omp task (§3.2: Input→depend(in),
// Output→depend(out)).
type Task struct {
	ROI       string
	DependIn  []string
	DependOut []string
}

// RecommendTask builds the task recommendation.
func RecommendTask(psec *core.PSEC) *Task {
	rec := &Task{ROI: psec.ROI.Name}
	for _, e := range psec.Elements {
		if e.Sets.Has(core.SetInput) {
			rec.DependIn = append(rec.DependIn, e.PSE.Name)
		}
		if e.Sets.Has(core.SetOutput) {
			rec.DependOut = append(rec.DependOut, e.PSE.Name)
		}
	}
	sort.Strings(rec.DependIn)
	sort.Strings(rec.DependOut)
	return rec
}

// Pragma renders the recommended #pragma omp task line.
func (rec *Task) Pragma() string {
	var b strings.Builder
	b.WriteString("#pragma omp task")
	if len(rec.DependIn) > 0 {
		fmt.Fprintf(&b, " depend(in: %s)", strings.Join(rec.DependIn, ", "))
	}
	if len(rec.DependOut) > 0 {
		fmt.Fprintf(&b, " depend(out: %s)", strings.Join(rec.DependOut, ", "))
	}
	return b.String()
}

package serve

import (
	"container/list"
	"sync"
)

// resultCache is the PSEC result cache: a byte-budgeted LRU from
// (program hash, compile-option fingerprint, profile-option
// fingerprint) — see resultKey — to the wire-encoded profile response
// body. A hit replays the stored bytes verbatim, so a cached response
// is byte-identical to the one the original computation produced, and
// an identical repeated request costs a map lookup instead of a full
// compile + profile session.
//
// Two rules keep it honest:
//
//   - Only clean results are stored. A result produced under any form
//     of degradation — truncated by a budget or deadline, healed by a
//     supervisor replay, downgraded by the resource governor, or run on
//     a shed-ladder rung — reflects that run's pressure, not the
//     program, and is never cached (see cacheableResult).
//   - Concurrent identical requests run once. The first becomes the
//     flight leader; the rest wait on the flight and replay its body.
//     A leader whose result turns out uncacheable settles the flight
//     with nil and the waiters fall back to running their own sessions.
type resultCache struct {
	mu      sync.Mutex
	budget  int64 // byte budget over stored bodies
	size    int64
	entries map[string]*list.Element // key → *resultSlot element
	order   *list.List               // front = most recent
	flights map[string]*resultFlight

	hits, misses, joins, stores, evictions uint64
}

type resultSlot struct {
	key  string
	body []byte
}

// resultFlight is one in-flight computation of a result-cache key.
// body is immutable once done is closed; nil means the leader's result
// was not cacheable.
type resultFlight struct {
	done chan struct{}
	body []byte
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*resultFlight),
	}
}

// lookup returns the cached wire body for key, counting the outcome.
func (c *resultCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*resultSlot).body, true
	}
	c.misses++
	return nil, false
}

// flight makes the caller the leader for key, or hands back the
// existing flight to join. A leader must settle exactly once, on every
// exit path.
func (c *resultCache) flight(key string) (fl *resultFlight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.flights[key]; ok {
		c.joins++
		return fl, false
	}
	fl = &resultFlight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

// settle publishes the leader's outcome: a non-nil body is stored and
// replayed to every waiter; nil releases the waiters to run their own
// sessions.
func (c *resultCache) settle(key string, fl *resultFlight, body []byte) {
	c.mu.Lock()
	delete(c.flights, key)
	fl.body = body
	if body != nil {
		c.storeLocked(key, body)
	}
	c.mu.Unlock()
	close(fl.done)
}

// storeLocked inserts (or refreshes) key and evicts LRU victims until
// the byte budget holds again. A body larger than the whole budget is
// not retained.
func (c *resultCache) storeLocked(key string, body []byte) {
	if int64(len(body)) > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		slot := el.Value.(*resultSlot)
		c.size += int64(len(body)) - int64(len(slot.body))
		slot.body = body
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&resultSlot{key: key, body: body})
		c.size += int64(len(body))
	}
	c.stores++
	for c.size > c.budget {
		oldest := c.order.Back()
		slot := oldest.Value.(*resultSlot)
		c.order.Remove(oldest)
		delete(c.entries, slot.key)
		c.size -= int64(len(slot.body))
		c.evictions++
	}
}

// resultCacheStats is the /v1/statz slice of the result cache.
type resultCacheStats struct {
	Hits      uint64
	Misses    uint64
	Joins     uint64
	Stores    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

func (c *resultCache) stats() resultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return resultCacheStats{
		Hits: c.hits, Misses: c.misses, Joins: c.joins,
		Stores: c.stores, Evictions: c.evictions,
		Entries: c.order.Len(), Bytes: c.size,
	}
}

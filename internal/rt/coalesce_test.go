package rt

import (
	"strings"
	"testing"

	"carmot/internal/core"
	"carmot/internal/testutil"
)

// coalesceReport renders the PSECs of a run for byte-comparison.
func coalesceReport(psecs []*core.PSEC) string {
	var sb strings.Builder
	for _, p := range psecs {
		if p != nil {
			sb.WriteString(p.Summary())
		}
	}
	return sb.String()
}

// driveStream replays ops ({addr, write, site}) through EmitAccess with
// periodic structural events, under the given config, and returns the
// rendered report plus the runtime for stats inspection.
type coalesceOp struct {
	addr  uint64
	write bool
	site  int32
}

func driveStream(cfg Config, ops []coalesceOp) (string, *Runtime) {
	if len(cfg.ROIs) == 0 {
		cfg.ROIs = []ROIMeta{{ID: 0, Name: "z", Kind: "carmot", Pos: "t.mc:1:1"}}
	}
	r := New(cfg)
	r.EmitAlloc(1, 1<<16, 0, &AllocMeta{Kind: core.PSEHeap, Name: "arr", Pos: "t.mc:2:2"})
	r.BeginROI(0)
	for i, op := range ops {
		r.EmitAccess(op.addr, op.write, op.site, 0)
		if i%1000 == 999 {
			// Structural events interleave with the access stream the way
			// allocs do in real runs; each must sequence the pending run
			// ahead of itself.
			r.EmitEscape(op.addr, 1+uint64(i)%100)
		}
	}
	r.EndROI(0)
	return coalesceReport(r.Finish()), r
}

// mergingOps is a stride-1 sweep on one site: maximal coalescing.
func mergingOps(n int) []coalesceOp {
	ops := make([]coalesceOp, n)
	for i := range ops {
		ops[i] = coalesceOp{addr: 1 + uint64(i%(1<<15)), write: i%(1<<15) == 0, site: 0}
	}
	return ops
}

// alternatingOps switches site (and kind) on every access: nothing ever
// merges, which is the pattern the adaptive gate exists for.
func alternatingOps(n int) []coalesceOp {
	ops := make([]coalesceOp, n)
	for i := range ops {
		ops[i] = coalesceOp{addr: 1 + uint64((i*7)%(1<<12)), write: i%2 == 0, site: int32(i % 3)}
	}
	return ops
}

// TestCoalesceByteIdentical pins the coalescing invariant at the runtime
// layer: for merging, alternating, and gate-crossing streams, the report
// with Config.Coalesce on is byte-identical to the one with it off, with
// identical accepted-event counts.
func TestCoalesceByteIdentical(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	streams := map[string][]coalesceOp{
		"merging":     mergingOps(3 * coalesceProbeWindow),
		"alternating": alternatingOps(3 * coalesceProbeWindow),
		"short":       mergingOps(17),
	}
	for name, ops := range streams {
		for _, batch := range []int{3, 64, 4096} {
			ref, rOff := driveStream(Config{BatchSize: batch, Workers: 2, Profile: ProfileFull}, ops)
			got, rOn := driveStream(Config{BatchSize: batch, Workers: 2, Profile: ProfileFull, Coalesce: true}, ops)
			if got != ref {
				t.Fatalf("%s batch=%d: coalesced report diverges\nref:\n%s\ngot:\n%s", name, batch, ref, got)
			}
			dOff, dOn := rOff.Diagnostics(), rOn.Diagnostics()
			if dOff.Events != dOn.Events {
				t.Fatalf("%s batch=%d: accepted events %d (coalesce) != %d (plain)",
					name, batch, dOn.Events, dOff.Events)
			}
		}
	}
}

// TestCoalesceAdaptiveGate checks both gate outcomes: an alternating
// stream (zero merges) must switch the combining buffer off at the
// early-exit window, and a merging stream must keep it on to the end.
func TestCoalesceAdaptiveGate(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	n := 4 * coalesceProbeWindow

	_, r := driveStream(Config{BatchSize: 512, Profile: ProfileFull, Coalesce: true}, alternatingOps(n))
	acc, runs := r.CoalesceStats()
	if acc >= uint64(n) {
		t.Fatalf("alternating stream: gate never fired (%d of %d accesses went through the buffer)", acc, n)
	}
	if acc < coalesceEarlyWindow {
		t.Fatalf("alternating stream: gate fired before the early-exit window (%d accesses)", acc)
	}
	if acc > coalesceProbeWindow {
		t.Fatalf("alternating stream: zero-merge early exit never fired (%d accesses buffered)", acc)
	}
	if acc-runs != 0 {
		t.Fatalf("alternating stream unexpectedly merged %d accesses", acc-runs)
	}

	_, r = driveStream(Config{BatchSize: 512, Profile: ProfileFull, Coalesce: true}, mergingOps(n))
	acc, runs = r.CoalesceStats()
	if acc != uint64(n) {
		t.Fatalf("merging stream: gate fired despite merging (%d of %d accesses buffered)", acc, n)
	}
	if saved := acc - runs; saved*2 < acc {
		t.Fatalf("merging stream merged too little: %d of %d", saved, acc)
	}

	// CoalesceForce pins the buffer on: the alternating stream that made
	// the gate fire above must now stay buffered to the end, with the
	// same report bytes as the plain path.
	ref, _ := driveStream(Config{BatchSize: 512, Profile: ProfileFull}, alternatingOps(n))
	got, r := driveStream(Config{BatchSize: 512, Profile: ProfileFull, CoalesceForce: true}, alternatingOps(n))
	if got != ref {
		t.Fatalf("forced-coalesce report diverges\nref:\n%s\ngot:\n%s", ref, got)
	}
	if acc, _ := r.CoalesceStats(); acc != uint64(n) {
		t.Fatalf("forced buffer still gated: %d of %d accesses buffered", acc, n)
	}
}

// TestCoalesceCapIdentical pins cap accounting: the MaxEvents governor
// must shed the same events at the same points with coalescing on.
func TestCoalesceCapIdentical(t *testing.T) {
	baseline := testutil.Goroutines()
	defer testutil.WaitGoroutines(t, baseline)
	ops := mergingOps(5000)
	limits := Limits{MaxEvents: 1200}
	ref, rOff := driveStream(Config{BatchSize: 256, Profile: ProfileFull, Limits: limits}, ops)
	got, rOn := driveStream(Config{BatchSize: 256, Profile: ProfileFull, Limits: limits, Coalesce: true}, ops)
	if got != ref {
		t.Fatalf("capped coalesced report diverges\nref:\n%s\ngot:\n%s", ref, got)
	}
	dOff, dOn := rOff.Diagnostics(), rOn.Diagnostics()
	if dOff.Events != dOn.Events || dOff.DroppedEvents != dOn.DroppedEvents {
		t.Fatalf("cap accounting differs: events %d/%d dropped %d/%d",
			dOff.Events, dOn.Events, dOff.DroppedEvents, dOn.DroppedEvents)
	}
}

package rt

import "carmot/internal/core"

// Coalescer is the producer-side combining buffer (the dynamic complement
// to the instrumenter's static aggregation, §4.4 opt 2): the interpreter
// routes hot-path accesses through it, and consecutive accesses that share
// a site, callstack, and access kind and fall on the same cell or on a
// constant stride are merged into one EvAccessRun before they ever reach
// the runtime's emit path. Because EmitAccessRun reserves one sequence
// number per covered access and splits at batch boundaries, the condensed
// stream downstream is byte-identical to the uncoalesced one — coalescing
// only compresses the wire format.
//
// The producer must call Flush before emitting anything else (alloc, free,
// escape, ROI boundary, range/fixed events, Pin-traced native calls), so
// the pending run takes exactly the sequence numbers its accesses would
// have taken; the interpreter's emit helpers enforce this discipline.
type Coalescer struct {
	rt *Runtime

	active     bool
	haveStride bool
	write      bool
	addr       uint64 // first covered cell
	lastAddr   uint64 // most recent covered cell
	stride     uint64 // constant stride (two's-complement; 0 = same cell)
	count      int64
	site       int32
	cs         core.CallstackID

	// Stats for diagnostics and tests.
	runs     uint64 // flushed pending runs (coalesced or single)
	accesses uint64 // accesses routed through the coalescer
}

// NewCoalescer returns a combining buffer in front of r.
func NewCoalescer(r *Runtime) *Coalescer { return &Coalescer{rt: r} }

// Access records one single-cell access, extending the pending run when
// the access continues it and flushing + restarting otherwise.
func (c *Coalescer) Access(addr uint64, write bool, site int32, cs core.CallstackID) {
	c.accesses++
	if c.active && write == c.write && site == c.site && cs == c.cs {
		if !c.haveStride {
			// Second access of the run fixes the stride (wraparound
			// arithmetic, so descending sweeps coalesce too).
			c.stride = addr - c.lastAddr
			c.haveStride = true
			c.lastAddr = addr
			c.count++
			return
		}
		if addr == c.lastAddr+c.stride {
			c.lastAddr = addr
			c.count++
			return
		}
	}
	c.Flush()
	c.active = true
	c.haveStride = false
	c.addr = addr
	c.lastAddr = addr
	c.count = 1
	c.write = write
	c.site = site
	c.cs = cs
}

// Flush emits the pending run, if any. Idempotent. A one-access run — the
// common case for access patterns that alternate sites and never merge —
// skips EmitAccessRun and goes straight to the plain emit path it would
// reduce to anyway.
func (c *Coalescer) Flush() {
	if !c.active {
		return
	}
	c.active = false
	c.runs++
	if c.count == 1 {
		c.rt.EmitAccess(c.addr, c.write, c.site, c.cs)
		return
	}
	c.rt.EmitAccessRun(c.addr, c.stride, c.count, c.write, c.site, c.cs)
}

// Stats reports how many accesses the coalescer has seen and how many
// emit-path calls they became.
func (c *Coalescer) Stats() (accesses, runs uint64) { return c.accesses, c.runs }

// Quickstart: characterize the paper's Figure 1 loop and print the
// OpenMP parallel-for recommendation CARMOT derives from its PSEC.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"carmot"
)

// The motivating example of the paper (Figure 1): a loop whose body reads
// a and b, scratches over x and i, and carries a true dependence on y
// through a non-commutative division.
const source = `
int work(int a, int b) {
	int i;
	int x;
	int y;
	y = 42;
	for (i = 0; i < 10; i++) {
		#pragma carmot roi figure1
		{
			x = i / (a + b);
			y = y / (a * x + b);
		}
	}
	return y;
}

int main() {
	return work(2, 3);
}
`

func main() {
	prog, err := carmot.Compile("figure1.mc", source, carmot.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP})
	if err != nil {
		log.Fatal(err)
	}
	roi := prog.ROIs()[0]
	psec := res.PSECs[roi.ID]

	fmt.Println("=== PSEC ===")
	fmt.Print(psec.Summary())

	fmt.Println("\n=== Recommendation ===")
	rec := carmot.RecommendParallelFor(psec, roi)
	fmt.Print(rec.Report())

	fmt.Println("\nAs the paper explains (§2.2): a and b are shared, x and i are")
	fmt.Println("private, and the statement updating y must go into a critical or")
	fmt.Println("ordered section because division is not commutative.")
}

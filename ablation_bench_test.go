package carmot_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// BenchmarkAblation* measures the profiling cost of the full CARMOT
// configuration with exactly one optimization (or runtime design choice)
// disabled, over a representative benchmark. The x-overhead metric makes
// the contribution of each choice directly comparable:
//
//	go test -bench=Ablation -benchtime 1x
import (
	"testing"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/instrument"
	"carmot/internal/rt"
)

// ablationOverhead profiles the cg benchmark under the given options and
// returns the modeled overhead factor.
func ablationOverhead(b *testing.B, opts instrument.Options, workers, batch int) float64 {
	b.Helper()
	bm, err := bench.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	src := bm.Source(bm.DevScale / 2)
	base, err := func() (float64, error) {
		prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			return 0, err
		}
		res, err := prog.Execute(nil, 0)
		if err != nil {
			return 0, err
		}
		return float64(res.Cycles), nil
	}()
	if err != nil {
		b.Fatal(err)
	}
	prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
	if err != nil {
		b.Fatal(err)
	}
	res, err := prog.Profile(carmot.ProfileOptions{
		Optimizations: &opts, Workers: workers, BatchSize: batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	return float64(res.Run.Cycles+res.Run.ToolCycles) / base
}

func runAblation(b *testing.B, mutate func(*instrument.Options), workers, batch int) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		opts := instrument.Carmot(rt.ProfileOpenMP)
		if mutate != nil {
			mutate(&opts)
		}
		overhead = ablationOverhead(b, opts, workers, batch)
	}
	b.ReportMetric(overhead, "x-overhead")
}

func BenchmarkAblationFullCarmot(b *testing.B) {
	runAblation(b, nil, 0, 0)
}

func BenchmarkAblationNoSubsequentAccess(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.SubsequentAccess = false }, 0, 0)
}

func BenchmarkAblationNoAggregation(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.Aggregation = false }, 0, 0)
}

func BenchmarkAblationNoFixedState(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.FixedState = false }, 0, 0)
}

func BenchmarkAblationNoMem2Reg(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.Mem2Reg = false }, 0, 0)
}

func BenchmarkAblationNoCallgraphO3(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.CallgraphO3 = false }, 0, 0)
}

func BenchmarkAblationNoPinGating(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.PinGating = false }, 0, 0)
}

func BenchmarkAblationNoClustering(b *testing.B) {
	runAblation(b, func(o *instrument.Options) { o.CallstackClustering = false }, 0, 0)
}

// Runtime design-choice ablations: the Figure 5 pipeline's worker count
// and batch size.
func BenchmarkAblationSingleWorker(b *testing.B) {
	runAblation(b, nil, 1, 0)
}

func BenchmarkAblationTinyBatches(b *testing.B) {
	runAblation(b, nil, 0, 16)
}

// TestAblationMonotonic sanity-checks the ablation surface: disabling any
// single optimization never *reduces* the modeled overhead.
func TestAblationMonotonic(t *testing.T) {
	bm, err := bench.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	src := bm.Source(bm.DevScale / 4)
	measure := func(opts instrument.Options) float64 {
		prog, err := carmot.Compile("cg.mc", src, carmot.CompileOptions{ProfileOmpRegions: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := prog.Profile(carmot.ProfileOptions{Optimizations: &opts})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Run.Cycles + res.Run.ToolCycles)
	}
	full := measure(instrument.Carmot(rt.ProfileOpenMP))
	mutations := map[string]func(*instrument.Options){
		"subsequent":  func(o *instrument.Options) { o.SubsequentAccess = false },
		"aggregation": func(o *instrument.Options) { o.Aggregation = false },
		"fixed":       func(o *instrument.Options) { o.FixedState = false },
		"mem2reg":     func(o *instrument.Options) { o.Mem2Reg = false },
		"callgraph":   func(o *instrument.Options) { o.CallgraphO3 = false },
		"pin":         func(o *instrument.Options) { o.PinGating = false },
		"clustering":  func(o *instrument.Options) { o.CallstackClustering = false },
	}
	for name, mutate := range mutations {
		opts := instrument.Carmot(rt.ProfileOpenMP)
		mutate(&opts)
		if got := measure(opts); got < full*0.999 {
			t.Errorf("disabling %s reduced cost (%.0f < %.0f)", name, got, full)
		}
	}
}

package rt

import (
	"fmt"
	"sort"
	"sync"

	"carmot/internal/core"
)

// maxShards bounds Config.Shards so shard routing can use a uint64
// residue bitmask.
const maxShards = 64

// shardOpFlush bounds a shard's pending op buffer between flushes.
const shardOpFlush = 1024

// allocInfo is the immutable identity of one allocation, shared between
// the sequencer and the shards. Everything here is written before the
// registering op is enqueued and never mutated afterwards.
type allocInfo struct {
	id      int32
	desc    core.PSEDesc
	key     string // desc.Key(), computed once at allocation
	base    uint64
	cells   int64
	roiMask uint64 // ROIs active when allocated ("allocated within")
}

// allocRec is one Active State Member Table entry at the sequencer: the
// shared identity plus sequencer-side liveness.
type allocRec struct {
	info *allocInfo
	live bool
}

// elemAcc accumulates the report for one source-identified PSE within one
// ROI (dynamic instances of the same static PSE fold together here).
type elemAcc struct {
	desc core.PSEDesc
	// descID is the allocation id desc came from. When several dynamic
	// instances share a Key (address reuse), the report carries the desc
	// of the lowest id — a shard-count-independent choice, unlike
	// "whichever instance a shard happened to touch first".
	descID   int32
	cellSets []core.SetMask
	firstSeq uint64
	lastSeq  uint64
	seen     bool
	useSites map[int32]map[core.CallstackID]struct{}
}

func (e *elemAcc) fold(off int, sets core.SetMask, firstSeq, lastSeq uint64) {
	for off >= len(e.cellSets) {
		e.cellSets = append(e.cellSets, 0)
	}
	e.cellSets[off] = core.MergeSets(e.cellSets[off], sets)
	if !e.seen || firstSeq < e.firstSeq {
		e.firstSeq = firstSeq
	}
	if lastSeq > e.lastSeq {
		e.lastSeq = lastSeq
	}
	e.seen = true
}

// merge folds another accumulator for the same PSE into e. Every
// operation is commutative (set OR, min/max seq, set union), so the
// merged result is independent of shard merge order.
func (e *elemAcc) merge(o *elemAcc) {
	if o.descID < e.descID {
		e.desc, e.descID = o.desc, o.descID
	}
	for off, s := range o.cellSets {
		if s == 0 {
			continue
		}
		for off >= len(e.cellSets) {
			e.cellSets = append(e.cellSets, 0)
		}
		e.cellSets[off] = core.MergeSets(e.cellSets[off], s)
	}
	if o.seen {
		if !e.seen || o.firstSeq < e.firstSeq {
			e.firstSeq = o.firstSeq
		}
		if o.lastSeq > e.lastSeq {
			e.lastSeq = o.lastSeq
		}
		e.seen = true
	}
	for site, set := range o.useSites {
		dst := e.useSites[site]
		if dst == nil {
			e.useSites[site] = set
			continue
		}
		for cs := range set {
			dst[cs] = struct{}{}
		}
	}
}

// postState is the ordered sequencing stage (Figure 5): it owns the
// ASMT (cell ownership + liveness), applies structural events in global
// order, and fans per-address work out to the shard goroutines. FSA cell
// tracking, use-callstacks, and access stats live on the shards; the
// reachability graphs stay here because escapes need both endpoints'
// owners.
type postState struct {
	rt  *Runtime
	cfg *Config
	cs  *core.CallstackTable

	k      uint64 // number of shards
	shards []*shardState
	bufs   [][]shardOp // pending ops per shard, flushed in batches
	epochs []uint64    // per-shard flush sequence numbers (journal/ack protocol)
	// opFree recycles flushed op buffers: shards return fully applied
	// batches here (journal-off runs only — a journaled buffer is retained
	// for replay) and push draws from it before allocating. The channel is
	// the synchronization: the send happens after the shard's last read,
	// the receive before the sequencer's first write.
	opFree chan []shardOp
	wg     sync.WaitGroup

	// live holds the live allocations sorted by base address. Live
	// intervals never overlap (reuse retires the previous owner first),
	// so ownership is a binary search — O(live allocations) space, where
	// a dense addr-indexed table would be O(highest address) and spend
	// the whole run in memclr for sparse address spaces.
	live      []*allocRec
	allocs    []*allocRec
	baseIndex map[uint64]int32 // base addr -> allocID for EvFree

	active []bool
	roiInv []uint64
	reach  []*core.ReachGraph
	stats  []core.Stats
}

func newPostState(r *Runtime) *postState {
	cfg := &r.cfg
	n := len(cfg.ROIs)
	p := &postState{
		rt:        r,
		cfg:       cfg,
		cs:        r.cs,
		k:         uint64(cfg.Shards),
		baseIndex: map[uint64]int32{},
		active:    make([]bool, n),
		roiInv:    make([]uint64, n),
		reach:     make([]*core.ReachGraph, n),
		stats:     make([]core.Stats, n),
	}
	for i := range p.reach {
		p.reach[i] = core.NewReachGraph()
	}
	p.shards = make([]*shardState, cfg.Shards)
	p.bufs = make([][]shardOp, cfg.Shards)
	p.epochs = make([]uint64, cfg.Shards)
	p.opFree = make(chan []shardOp, 4*cfg.Shards+4)
	for i := range p.shards {
		p.shards[i] = newShardState(r, uint64(i), p.k)
	}
	return p
}

// liveAfter returns the index of the first live interval whose base is
// > addr; the candidate owner of addr is the interval just before it.
func (p *postState) liveAfter(addr uint64) int {
	lo, hi := 0, len(p.live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.live[mid].info.base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (p *postState) owner(addr uint64) *allocRec {
	i := p.liveAfter(addr)
	if i == 0 {
		return nil
	}
	rec := p.live[i-1]
	if addr-rec.info.base < uint64(rec.info.cells) {
		return rec
	}
	return nil
}

// push queues op for shard sid, flushing the buffer when it fills. The
// buffer is sized for a full flush up front: it is handed off at flush
// time (the journal and the shard both keep it), so growing it
// incrementally would just re-pay the append doubling chain every epoch.
func (p *postState) push(sid uint64, op shardOp) {
	if cap(p.bufs[sid]) == 0 {
		select {
		case p.bufs[sid] = <-p.opFree:
		default:
			p.bufs[sid] = make([]shardOp, 0, shardOpFlush)
		}
	}
	p.bufs[sid] = append(p.bufs[sid], op)
	if len(p.bufs[sid]) >= shardOpFlush {
		p.flushShard(sid)
	}
}

// flushShard stamps the pending buffer with the shard's next epoch,
// journals it (when recovery is on), and sends it. Journal-before-send
// is the replay protocol's one ordering requirement: once a batch is on
// the channel, a respawned shard can rely on finding it in the journal
// and skip the channel copy by epoch.
func (p *postState) flushShard(sid uint64) {
	if len(p.bufs[sid]) == 0 {
		return
	}
	p.epochs[sid]++
	if p.rt.journal != nil {
		p.rt.journal.appendShard(int(sid), p.epochs[sid], p.bufs[sid])
	}
	p.shards[sid].in <- shardBatch{epoch: p.epochs[sid], ops: p.bufs[sid]}
	p.bufs[sid] = nil
}

// flushShards sends every pending op buffer; the sequencer calls it after
// each ordered batch so shard latency stays bounded.
func (p *postState) flushShards() {
	for sid := range p.bufs {
		p.flushShard(uint64(sid))
	}
}

// broadcast queues op for every shard (ROI boundaries).
func (p *postState) broadcast(op shardOp) {
	for sid := uint64(0); sid < p.k; sid++ {
		p.push(sid, op)
	}
}

// fanoutMask returns the residue bitmask of shards owning at least one
// cell of the strided range. Ranges of >= k cells may over-approximate
// to all shards — shards filter by residue themselves, so a superset is
// always safe (and exact computation under uint64 wraparound is not
// worth the cycles).
func (p *postState) fanoutMask(base uint64, n, stride int64) uint64 {
	if n <= 0 {
		return 0
	}
	full := uint64(1)<<p.k - 1
	if p.k == 1 || uint64(n) >= p.k {
		return full
	}
	if stride == 0 {
		stride = 1
	}
	var mask uint64
	for i := int64(0); i < n; i++ {
		mask |= 1 << ((base + uint64(i*stride)) % p.k)
		if mask == full {
			break
		}
	}
	return mask
}

// fanout queues op for every shard in mask.
func (p *postState) fanout(mask uint64, op shardOp) {
	for sid := uint64(0); mask != 0; sid++ {
		if mask&(1<<sid) != 0 {
			mask &^= 1 << sid
			p.push(sid, op)
		}
	}
}

func (p *postState) apply(item *postItem) {
	if !item.hasEv {
		p.routeSummaries(item)
		return
	}
	ev := &item.ev
	switch ev.Kind {
	case EvROIBegin:
		roi := int(ev.ROI)
		p.roiInv[roi]++
		p.active[roi] = true
		p.stats[roi].Invocations++
		p.broadcast(shardOp{kind: opEvent, ev: item.ev})
	case EvROIEnd:
		p.active[int(ev.ROI)] = false
		p.broadcast(shardOp{kind: opEvent, ev: item.ev})
	case EvAlloc:
		p.applyAlloc(ev, &item.cold)
	case EvFree:
		if id, ok := p.baseIndex[ev.Addr]; ok {
			p.finalizeAlloc(p.allocs[id])
		}
	case EvEscape:
		p.applyEscape(ev, &item.cold)
	case EvFixed:
		p.fanout(p.fanoutMask(ev.Addr, item.cold.N, 1),
			shardOp{kind: opEvent, ev: item.ev, cold: item.cold})
	case EvRange:
		// The per-event Events count is charged once, here; per-cell
		// access counts accrue on the owning shards.
		p.stats[int(ev.ROI)].Events++
		p.fanout(p.fanoutMask(ev.Addr, item.cold.N, int64(item.cold.Aux)),
			shardOp{kind: opEvent, ev: item.ev, cold: item.cold})
	}
}

// routeSummaries partitions a condensed block by owning shard: summaries
// by their cell's residue, use records to every shard holding at least
// one sampled address (the uses slice is shared read-only).
func (p *postState) routeSummaries(item *postItem) {
	if len(item.sums) > 0 {
		if p.k == 1 {
			p.push(0, shardOp{kind: opSums, sums: item.sums})
		} else {
			var counts [maxShards]int32
			for i := range item.sums {
				counts[item.sums[i].addr%p.k]++
			}
			var parts [maxShards][]accSummary
			for i := range item.sums {
				sid := item.sums[i].addr % p.k
				if parts[sid] == nil {
					parts[sid] = make([]accSummary, 0, counts[sid])
				}
				parts[sid] = append(parts[sid], item.sums[i])
			}
			for sid := uint64(0); sid < p.k; sid++ {
				if parts[sid] != nil {
					p.push(sid, shardOp{kind: opSums, sums: parts[sid]})
				}
			}
		}
	}
	if len(item.uses) > 0 {
		var mask uint64
		full := uint64(1)<<p.k - 1
		for i := range item.uses {
			for _, a := range item.uses[i].sampleSet() {
				mask |= 1 << (a % p.k)
			}
			if mask == full {
				break
			}
		}
		p.fanout(mask, shardOp{kind: opUses, uses: item.uses})
	}
}

func (p *postState) applyAlloc(ev *Event, cold *EventCold) {
	info := &allocInfo{
		id:    int32(len(p.allocs)),
		base:  ev.Addr,
		cells: cold.N,
	}
	info.desc = core.PSEDesc{
		Kind: cold.Meta.Kind, Name: cold.Meta.Name, AllocPos: cold.Meta.Pos,
		AllocStack: ev.CS, Cells: int(cold.N),
	}
	info.key = info.desc.Key()
	for roi := range p.active {
		if p.active[roi] {
			info.roiMask |= 1 << uint(roi)
			if p.cfg.Profile.Reach {
				p.reach[roi].Touch(info.desc, ev.Seq)
			}
		}
	}
	rec := &allocRec{info: info, live: true}
	// Reuse of an address range (stack frames, freed heap) retires the
	// previous owners implicitly. Overlapping intervals are contiguous
	// in the sorted order; collect them first since finalizeAlloc
	// splices the slice.
	limit := ev.Addr + uint64(cold.N)
	start := p.liveAfter(ev.Addr)
	if start > 0 {
		prev := p.live[start-1]
		if ev.Addr-prev.info.base < uint64(prev.info.cells) {
			start--
		}
	}
	end := start
	for end < len(p.live) && p.live[end].info.base < limit {
		end++
	}
	if end > start {
		doomed := make([]*allocRec, end-start)
		copy(doomed, p.live[start:end])
		for _, d := range doomed {
			p.finalizeAlloc(d)
		}
	}
	at := p.liveAfter(ev.Addr)
	p.live = append(p.live, nil)
	copy(p.live[at+1:], p.live[at:])
	p.live[at] = rec
	p.allocs = append(p.allocs, rec)
	p.baseIndex[ev.Addr] = info.id
	p.fanout(p.fanoutMask(info.base, info.cells, 1),
		shardOp{kind: opEvent, ev: *ev, info: info})
}

// finalizeAlloc retires an allocation at the sequencer and tells every
// owning shard to fold its FSA state into the per-source accumulators.
func (p *postState) finalizeAlloc(rec *allocRec) {
	if !rec.live {
		return
	}
	rec.live = false
	info := rec.info
	delete(p.baseIndex, info.base)
	if i := p.liveAfter(info.base); i > 0 && p.live[i-1] == rec {
		p.live = append(p.live[:i-1], p.live[i:]...)
	}
	p.fanout(p.fanoutMask(info.base, info.cells, 1),
		shardOp{kind: opFinalize, alloc: info.id})
}

// finalizeLive retires every still-live allocation, in allocation order,
// at end of run.
func (p *postState) finalizeLive() {
	for _, rec := range p.allocs {
		if rec.live {
			p.finalizeAlloc(rec)
		}
	}
}

// shutdownShards flushes the pending op buffers, closes the shard
// channels, and waits for every shard goroutine to drain and exit.
func (p *postState) shutdownShards() {
	p.flushShards()
	for _, s := range p.shards {
		close(s.in)
	}
	p.wg.Wait()
}

func (p *postState) applyEscape(ev *Event, cold *EventCold) {
	if !p.cfg.Profile.Reach {
		return
	}
	from := p.owner(ev.Addr)
	to := p.owner(cold.Aux)
	if from == nil || to == nil {
		return
	}
	for roi := range p.active {
		if !p.active[roi] {
			continue
		}
		bit := uint64(1) << uint(roi)
		if from.info.roiMask&bit == 0 || to.info.roiMask&bit == 0 {
			continue
		}
		p.reach[roi].AddEdge(from.info.desc, to.info.desc, ev.Seq)
	}
}

// finish merges the shard states (safe: every shard goroutine has
// exited) and builds the per-ROI PSECs. Every merged quantity is
// commutative — set ORs, min/max sequence numbers, set unions, counter
// sums, min access times on already-interned reach nodes — so the result
// is byte-identical to the sequential pipeline's.
func (p *postState) finish() []*core.PSEC {
	out := make([]*core.PSEC, len(p.cfg.ROIs))
	for roi := range p.cfg.ROIs {
		merged := map[string]*elemAcc{}
		stats := p.stats[roi]
		touched := map[int32]uint64{}
		for _, s := range p.shards {
			for key, e := range s.acc[roi] {
				if dst, ok := merged[key]; ok {
					dst.merge(e)
				} else {
					merged[key] = e
				}
			}
			sh := s.stats[roi]
			stats.TotalAccesses += sh.TotalAccesses
			stats.VarAccesses += sh.VarAccesses
			stats.MemAccesses += sh.MemAccesses
			stats.Invocations += sh.Invocations
			stats.Events += sh.Events
			for id, seq := range s.touch[roi] {
				if old, ok := touched[id]; !ok || seq < old {
					touched[id] = seq
				}
			}
		}
		if p.cfg.Profile.Reach && len(touched) > 0 {
			// Every touched desc was interned at alloc time (both guards
			// check the same roiMask bit), so Touch only lowers min
			// access times here; sort for determinism regardless.
			ids := make([]int32, 0, len(touched))
			for id := range touched {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				p.reach[roi].Touch(p.allocs[id].info.desc, touched[id])
			}
		}
		meta := p.cfg.ROIs[roi]
		psec := &core.PSEC{
			ROI:        core.ROIInfo{ID: meta.ID, Name: meta.Name, Kind: meta.Kind, Pos: meta.Pos},
			Reach:      p.reach[roi],
			Callstacks: p.cs,
			Stats:      stats,
		}
		keys := make([]string, 0, len(merged))
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := merged[k]
			elem := &core.Element{
				PSE:         e.desc,
				Ranges:      core.AggregateRanges(e.cellSets),
				FirstAccess: e.firstSeq,
				LastAccess:  e.lastSeq,
			}
			for _, r := range elem.Ranges {
				elem.Sets = core.MergeSets(elem.Sets, r.Sets)
			}
			if e.desc.Kind == core.PSEVariable {
				p.mergeStaticUses(e)
			}
			elem.UseSites = p.buildUseSites(e)
			elem.Reducible, elem.Reduction = p.reduction(e)
			if e.desc.Kind == core.PSEVariable {
				// Reducibility of variables is decided statically (§4.4
				// opt 1 may have removed some instrumentation).
				op, ok := p.cfg.ReducibleVars[e.desc.AllocPos]
				elem.Reducible, elem.Reduction = ok, op
			}
			if elem.Sets == 0 && len(elem.UseSites) == 0 {
				continue
			}
			psec.Elements = append(psec.Elements, elem)
		}
		out[roi] = psec
	}
	return out
}

// mergeStaticUses adds compiler-contributed use sites for a variable.
func (p *postState) mergeStaticUses(e *elemAcc) {
	for _, site := range p.cfg.StaticVarUses[e.desc.AllocPos] {
		if _, ok := e.useSites[site]; !ok {
			e.useSites[site] = map[core.CallstackID]struct{}{}
		}
	}
}

func (p *postState) buildUseSites(e *elemAcc) []core.UseSite {
	if len(e.useSites) == 0 {
		return nil
	}
	sites := make([]int32, 0, len(e.useSites))
	for s := range e.useSites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := make([]core.UseSite, 0, len(sites))
	for _, s := range sites {
		info := p.cfg.Sites[s]
		u := core.UseSite{Pos: info.Pos, IsWrite: info.Write}
		css := make([]core.CallstackID, 0, len(e.useSites[s]))
		for cs := range e.useSites[s] {
			css = append(css, cs)
		}
		sort.Slice(css, func(i, j int) bool { return css[i] < css[j] })
		u.Callstacks = css
		out = append(out, u)
	}
	return out
}

// reduction decides whether every in-ROI computation on the element is a
// single commutative reduction (load e; op; store e), the §3.2 check that
// admits a reduction(op:var) clause.
func (p *postState) reduction(e *elemAcc) (bool, string) {
	if len(e.useSites) == 0 {
		return false, ""
	}
	op := ""
	for s := range e.useSites {
		info := p.cfg.Sites[s]
		if info.ReduceOp == "" {
			return false, ""
		}
		if op == "" {
			op = info.ReduceOp
		} else if op != info.ReduceOp {
			return false, ""
		}
	}
	return true, op
}

// DumpASMT renders the live-allocation table; useful in tests/debugging.
func (p *postState) DumpASMT() string {
	s := ""
	for _, a := range p.allocs {
		if a.live {
			s += fmt.Sprintf("alloc %d %s base=%d cells=%d\n",
				a.info.id, a.info.desc.Key(), a.info.base, a.info.cells)
		}
	}
	return s
}

// Fleet benchmark (the BENCH_serve.json "fleet" section): drives a
// concurrent request burst through carmot-router fronting three live
// carmotd replicas — real TCP, real failover — under three fleet
// conditions: everything healthy, one replica dead, and one replica
// flapping (killed and restarted on a timer) for the whole burst. The
// headline number is the degradation ratio: one-dead p99 over healthy
// p99, which the fault-tolerance work keeps within 2x.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"carmot/internal/chaos"
	"carmot/internal/router"
	"carmot/internal/serve"
)

// FleetScenarioReport is one fleet condition's burst result.
type FleetScenarioReport struct {
	Scenario string `json:"scenario"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Errors   int    `json:"errors"`  // requests that never completed
	Retried  int    `json:"retried"` // requests that needed client retries
	// Latency percentiles over completed requests, including client
	// retry time, in milliseconds.
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// Router counters for the scenario.
	Failovers uint64 `json:"failovers"`
	Exhausted uint64 `json:"exhausted"`
	Flaps     int    `json:"flaps,omitempty"` // kill+restart cycles (flapping only)
}

// FleetBenchReport is the machine-readable fleet section of
// BENCH_serve.json.
type FleetBenchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Replicas   int    `json:"replicas"`
	Clients    int    `json:"clients"`

	Healthy  FleetScenarioReport `json:"healthy"`
	OneDead  FleetScenarioReport `json:"one_dead"`
	Flapping FleetScenarioReport `json:"flapping"`

	// DegradedP99Ratio is one-dead p99 / healthy p99 — the cost of a
	// dead replica once routing has settled.
	DegradedP99Ratio float64 `json:"degraded_p99_ratio"`
}

// fleetBenchRouterConfig is the router tuning under test: probing fast
// enough to notice a kill within tens of milliseconds, breaker and
// backoff at production-shaped (small) values.
func fleetBenchRouterConfig() router.Config {
	return router.Config{
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		DownAfter:        1,
		UpAfter:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBase:        2 * time.Millisecond,
		RetryCap:         20 * time.Millisecond,
		AttemptTimeout:   5 * time.Second,
	}
}

// fleetBenchScenario runs one burst against a fresh fleet. disrupt is
// called after warm-up and before the burst; during, if non-nil, runs
// concurrently with the burst and is stopped (and waited for) when the
// burst ends.
func fleetBenchScenario(name string, clients, total int, disrupt func(*chaos.Fleet), during func(*chaos.Fleet, <-chan struct{})) (FleetScenarioReport, error) {
	rep := FleetScenarioReport{Scenario: name, Requests: total}
	fleet, err := chaos.StartFleetWith(3, fleetBenchRouterConfig(), serve.Config{
		RetryBase:      time.Millisecond,
		TenantRate:     float64(total * 4),
		TenantBurst:    total * 4,
		DefaultTimeout: 2 * time.Minute,
		// Every request must run a real session, as in the serve burst —
		// cached replays would make dead-replica failover look free.
		ResultCacheBytes: -1,
	})
	if err != nil {
		return rep, err
	}
	defer fleet.Close()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()
	bodies := make([][]byte, len(serveBenchSources))
	for i, src := range serveBenchSources {
		if bodies[i], err = json.Marshal(map[string]any{"source": src}); err != nil {
			return rep, err
		}
	}
	// Warm every replica's program cache through the router: one request
	// per (source, tenant-spread) pair, so the burst measures steady
	// state rather than first-compile latency.
	for t := 0; t < 8; t++ {
		for i := range bodies {
			if ok, _, _ := fleetFire(client, fleet.URL, bodies[i], fmt.Sprintf("fleet-%d", t)); !ok {
				return rep, fmt.Errorf("%s warm-up (tenant %d source %d) failed", name, t, i)
			}
		}
	}

	if disrupt != nil {
		disrupt(fleet)
		fleet.Router.ProbeNow() // scenario measures steady state, not discovery
	}
	stop := make(chan struct{})
	var duringWG sync.WaitGroup
	if during != nil {
		duringWG.Add(1)
		go func() {
			defer duringWG.Done()
			during(fleet, stop)
		}()
	}

	latencies := make([]time.Duration, total)
	outcomes := make([]bool, total)
	var retried atomic.Int64
	next := make(chan int, total)
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				ok, tries := fleetComplete(client, fleet.URL, bodies[i%len(bodies)], fmt.Sprintf("fleet-%d", i%8))
				latencies[i] = time.Since(t0)
				outcomes[i] = ok
				if tries > 1 {
					retried.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	duringWG.Wait()

	var okLat []time.Duration
	for i, ok := range outcomes {
		if ok {
			rep.OK++
			okLat = append(okLat, latencies[i])
		} else {
			rep.Errors++
		}
	}
	if len(okLat) == 0 {
		return rep, fmt.Errorf("%s: no request completed", name)
	}
	sort.Slice(okLat, func(a, b int) bool { return okLat[a] < okLat[b] })
	rep.Retried = int(retried.Load())
	rep.P50Ms = percentile(okLat, 0.50)
	rep.P99Ms = percentile(okLat, 0.99)
	rep.MaxMs = float64(okLat[len(okLat)-1].Nanoseconds()) / 1e6
	rep.RequestsPerSec = float64(total) / wall.Seconds()
	st := fleet.Router.Snapshot()
	rep.Failovers = st.Failovers
	rep.Exhausted = st.Exhausted
	return rep, nil
}

// fleetFire posts one request at the router. ok means 200.
func fleetFire(client *http.Client, base string, body []byte, tenant string) (ok bool, status int, err error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/profile", bytes.NewReader(body))
	if err != nil {
		return false, 0, err
	}
	req.Header.Set(serve.TenantHeader, tenant)
	res, err := client.Do(req)
	if err != nil {
		return false, 0, err
	}
	defer res.Body.Close()
	var sink [4096]byte
	for {
		if _, rerr := res.Body.Read(sink[:]); rerr != nil {
			break
		}
	}
	return res.StatusCode == http.StatusOK, res.StatusCode, nil
}

// fleetComplete drives one request to completion the way a well-behaved
// client does: structured refusals (router exhaustion mid-flap) are
// retried with a short backoff; the recorded latency covers the whole
// thing.
func fleetComplete(client *http.Client, base string, body []byte, tenant string) (ok bool, tries int) {
	deadline := time.Now().Add(15 * time.Second)
	backoff := 2 * time.Millisecond
	for {
		tries++
		ok, status, err := fleetFire(client, base, body, tenant)
		if ok {
			return true, tries
		}
		if err == nil && status != http.StatusBadGateway &&
			status != http.StatusServiceUnavailable && status != http.StatusTooManyRequests {
			return false, tries // not retryable
		}
		if time.Now().After(deadline) {
			return false, tries
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// flapPeriod is the flapping scenario's half-cycle: the victim replica
// is dead for flapPeriod, back for flapPeriod, repeatedly.
const flapPeriod = 150 * time.Millisecond

// FleetBench runs the three fleet scenarios and computes the
// degradation ratio.
func FleetBench(clients, total int) (FleetBenchReport, error) {
	if clients <= 0 {
		clients = 16
	}
	if total <= 0 {
		total = 400
	}
	rep := FleetBenchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Replicas:   3,
		Clients:    clients,
	}
	var err error
	if rep.Healthy, err = fleetBenchScenario("healthy", clients, total, nil, nil); err != nil {
		return rep, err
	}
	if rep.OneDead, err = fleetBenchScenario("one_dead", clients, total, func(f *chaos.Fleet) {
		f.Replicas[0].Kill()
	}, nil); err != nil {
		return rep, err
	}
	flaps := 0
	if rep.Flapping, err = fleetBenchScenario("flapping", clients, total, nil, func(f *chaos.Fleet, stop <-chan struct{}) {
		for {
			f.Replicas[1].Kill()
			select {
			case <-stop:
				return
			case <-time.After(flapPeriod):
			}
			f.Replicas[1].Restart()
			flaps++
			select {
			case <-stop:
				return
			case <-time.After(flapPeriod):
			}
		}
	}); err != nil {
		return rep, err
	}
	rep.Flapping.Flaps = flaps
	if rep.Healthy.P99Ms > 0 {
		rep.DegradedP99Ratio = rep.OneDead.P99Ms / rep.Healthy.P99Ms
	}
	return rep, nil
}

// MergeFleetSection grafts a fleet report onto an existing
// BENCH_serve.json document (or a fresh one when prev is empty or
// unreadable), so -exp serve and -exp fleet can regenerate their
// sections independently.
func MergeFleetSection(prev []byte, fleet FleetBenchReport) ([]byte, error) {
	var rep ServeBenchReport
	if len(prev) > 0 {
		if err := json.Unmarshal(prev, &rep); err != nil {
			rep = ServeBenchReport{}
		}
	}
	rep.Fleet = &fleet
	return MarshalServeBench(rep)
}

// RenderFleetBench formats the report as a text table.
func RenderFleetBench(rep FleetBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet latency under failure (%d replicas, %d clients)\n", rep.Replicas, rep.Clients)
	fmt.Fprintf(&sb, "%-10s %8s %6s %6s %8s %10s %10s %10s %10s\n",
		"scenario", "requests", "ok", "err", "retried", "p50 ms", "p99 ms", "req/s", "failovers")
	for _, sc := range []FleetScenarioReport{rep.Healthy, rep.OneDead, rep.Flapping} {
		fmt.Fprintf(&sb, "%-10s %8d %6d %6d %8d %10.2f %10.2f %10.0f %10d\n",
			sc.Scenario, sc.Requests, sc.OK, sc.Errors, sc.Retried,
			sc.P50Ms, sc.P99Ms, sc.RequestsPerSec, sc.Failovers)
	}
	fmt.Fprintf(&sb, "one-dead p99 / healthy p99 = %.2fx (flapping cycles: %d)\n",
		rep.DegradedP99Ratio, rep.Flapping.Flaps)
	return sb.String()
}

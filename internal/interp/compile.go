package interp

// The bytecode compiler. Each ir.Func is translated once, on first call,
// into a flat []bcInstr stream the switch-dispatch loop in bc.go executes
// with no interface dispatch and no per-instruction ir.Base calls. The
// translation is strictly 1:1 — one bytecode word per IR instruction, in
// block order, with branch targets patched to instruction indexes — so
// every observable counter (steps, cycles, serial cycles, tool cycles,
// access tallies) advances exactly as it does in the tree-walker, which
// is what makes the two engines differentiable bit-for-bit.
//
// Everything the tree-walker resolves per execution is resolved here per
// compilation: operand kinds become (mode, payload) pairs, constants and
// global/function addresses fold to immediates, alloca frame offsets and
// allocation metadata are precomputed, and call sites pre-bind their
// callee (or pre-classify as indirect).

import (
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/rt"

	"carmot/internal/core"
)

type bcOp uint8

const (
	opAlloca bcOp = iota
	opLoad
	opStore
	opAddI
	opSubI
	opMulI
	opDivI
	opRemI
	opEqI
	opNeI
	opLtI
	opLeI
	opGtI
	opGeI
	opAddF
	opSubF
	opMulF
	opDivF
	opEqF
	opNeF
	opLtF
	opLeF
	opGtF
	opGeF
	opConvItoF
	opConvFtoI
	opGEP
	opMalloc
	opFree
	opCall
	opRet
	opJmp
	opCondJmp
	opROIBegin
	opROIEnd
	opMark
	opRanged
	opFixed
	// opBadOp reproduces the tree-walker's runtime error for an
	// instruction it cannot execute ("bad float op", unhandled kinds);
	// the error fires only if the instruction is actually reached.
	opBadOp
)

// bcInstr flag bits.
const (
	bfSerial   = 1 << iota // cost also accrues to serialCycles
	bfTrack                // instrumentation fires (Track == TrackOn)
	bfSym                  // load/store names a variable (access tallies)
	bfPtrStore             // store may create a reachability edge
	bfHasB                 // optional second operand present (GEP index, Ret value)
	bfWrite                // ranged event is a write
)

// Operand addressing modes: how a bcInstr's a/b payload resolves.
const (
	opdImm   uint8 = iota // payload is the value (consts, globals, fnptrs)
	opdTemp               // payload indexes the frame's temps
	opdArg                // payload indexes the frame's args
	opdFrame              // payload is an offset from the frame's alloca base
)

// bcInstr is one fixed-width bytecode word. Operands a and b carry their
// addressing mode beside them; imm/imm2 are pre-folded immediates whose
// meaning is per-opcode (branch targets, scales, cell counts); ext indexes
// the side tables on compiledFunc for the cold payloads (allocation
// metadata, call specs, ROIs, markers).
type bcInstr struct {
	a     uint64
	b     uint64
	imm   int64
	imm2  int64
	dst   int32
	site  int32
	ext   int32
	cost  int32
	op    bcOp
	amode uint8
	bmode uint8
	flags uint8
}

// opdSpec is a pre-resolved operand in a side table (call arguments).
type opdSpec struct {
	mode uint8
	val  uint64
}

// callSpec is one pre-bound call site.
type callSpec struct {
	x        *ir.Call
	args     []opdSpec
	target   *ir.Func   // direct MiniC callee
	extern   *ir.Extern // direct native callee
	callee   opdSpec    // evaluated when indirect
	indirect bool
	pinGated bool
	void     bool
	pos      lang.Pos
}

// mallocSpec carries a malloc site's precomputed identity.
type mallocSpec struct {
	pos  string
	meta *rt.AllocMeta // nil when the site is untracked
}

// compiledFunc is one function's bytecode plus its cold side tables.
type compiledFunc struct {
	fn      *ir.Func
	code    []bcInstr
	poss    []lang.Pos      // source position per pc (runtime errors)
	allocas []*rt.AllocMeta // opAlloca ext (nil when untracked)
	mallocs []mallocSpec    // opMalloc ext
	calls   []callSpec      // opCall ext
	rois    []*ir.ROI       // opROIBegin/opROIEnd ext
	marks   []*ir.Mark      // opMark ext
	msgs    []string        // opBadOp ext
}

func (it *Interp) compiledOf(fn *ir.Func) *compiledFunc {
	if cf, ok := it.compiled[fn]; ok {
		return cf
	}
	cf := it.compile(fn)
	it.compiled[fn] = cf
	return cf
}

// operand lowers an ir.Value exactly as eval resolves it at runtime.
func (it *Interp) operand(lay *funcLayout, v ir.Value) opdSpec {
	switch x := v.(type) {
	case *ir.Const:
		return opdSpec{opdImm, constBits(x)}
	case *ir.Alloca:
		return opdSpec{opdFrame, lay.offsets[x.Index]}
	case *ir.GlobalAddr:
		return opdSpec{opdImm, it.globalOff[x.Global]}
	case *ir.Param:
		return opdSpec{opdArg, uint64(x.Index)}
	case *ir.FuncRef:
		return opdSpec{opdImm, it.fnptrOf(x)}
	}
	if in, ok := v.(ir.Instr); ok {
		return opdSpec{opdTemp, uint64(ir.Base(in).Temp)}
	}
	panic("interp: unknown value kind")
}

var intOps = map[ir.BinOp]bcOp{
	ir.OpAdd: opAddI, ir.OpSub: opSubI, ir.OpMul: opMulI,
	ir.OpDiv: opDivI, ir.OpRem: opRemI,
	ir.OpEq: opEqI, ir.OpNe: opNeI, ir.OpLt: opLtI,
	ir.OpLe: opLeI, ir.OpGt: opGtI, ir.OpGe: opGeI,
}

var floatOps = map[ir.BinOp]bcOp{
	ir.OpAdd: opAddF, ir.OpSub: opSubF, ir.OpMul: opMulF,
	ir.OpDiv: opDivF,
	ir.OpEq: opEqF, ir.OpNe: opNeF, ir.OpLt: opLtF,
	ir.OpLe: opLeF, ir.OpGt: opGtF, ir.OpGe: opGeF,
}

func (it *Interp) compile(fn *ir.Func) *compiledFunc {
	lay := it.layouts[fn]
	cf := &compiledFunc{fn: fn}
	blockPC := map[*ir.Block]int{}
	type patch struct {
		pc   int
		a, b *ir.Block // Br target, or CondBr true/false
	}
	var patches []patch

	setA := func(bi *bcInstr, v ir.Value) {
		o := it.operand(lay, v)
		bi.amode, bi.a = o.mode, o.val
	}
	setB := func(bi *bcInstr, v ir.Value) {
		o := it.operand(lay, v)
		bi.bmode, bi.b = o.mode, o.val
	}

	for _, blk := range fn.Blocks {
		blockPC[blk] = len(cf.code)
		for _, in := range blk.Instrs {
			base := ir.Base(in)
			bi := bcInstr{dst: int32(base.Temp), site: base.Site, ext: -1}
			if base.Serial {
				bi.flags |= bfSerial
			}
			if base.Track == ir.TrackOn {
				bi.flags |= bfTrack
			}

			switch x := in.(type) {
			case *ir.Alloca:
				bi.op = opAlloca
				bi.cost = costAlloca
				bi.a = lay.offsets[x.Index]
				bi.imm = int64(x.Cells)
				if base.Track == ir.TrackOn {
					kind := core.PSEStackMem
					if x.Sym != nil && x.Sym.Type.IsScalar() {
						kind = core.PSEVariable
					}
					name := "<tmp>"
					pos := base.Pos
					if x.Sym != nil {
						name = x.Sym.Name
						pos = x.Sym.Pos
					}
					bi.ext = int32(len(cf.allocas))
					cf.allocas = append(cf.allocas, &rt.AllocMeta{Kind: kind, Name: name, Pos: pos.String()})
				}

			case *ir.Load:
				bi.op = opLoad
				bi.cost = costLoad
				setA(&bi, x.Addr)
				if x.Sym != nil {
					bi.flags |= bfSym
				}

			case *ir.Store:
				bi.op = opStore
				bi.cost = costStore
				setA(&bi, x.Addr)
				setB(&bi, x.Val)
				if x.Sym != nil {
					bi.flags |= bfSym
				}
				if x.PtrStore {
					bi.flags |= bfPtrStore
				}

			case *ir.Bin:
				ops, bad := intOps, "bad int op"
				bi.cost = costBin
				if x.Float {
					ops, bad = floatOps, "bad float op"
				}
				if x.Op == ir.OpDiv || x.Op == ir.OpRem {
					bi.cost = costDivBin
				}
				op, ok := ops[x.Op]
				if !ok {
					bi.op = opBadOp
					bi.ext = int32(len(cf.msgs))
					cf.msgs = append(cf.msgs, bad)
					break
				}
				bi.op = op
				setA(&bi, x.L)
				setB(&bi, x.R)

			case *ir.Convert:
				if x.ToFloat {
					bi.op = opConvItoF
				} else {
					bi.op = opConvFtoI
				}
				bi.cost = costConvert
				setA(&bi, x.X)

			case *ir.GEP:
				bi.op = opGEP
				bi.cost = costGEP
				setA(&bi, x.Base)
				if x.Index != nil {
					bi.flags |= bfHasB
					setB(&bi, x.Index)
				}
				bi.imm = x.Scale
				bi.imm2 = x.Offset

			case *ir.Malloc:
				bi.op = opMalloc
				bi.cost = costMalloc
				setA(&bi, x.Count)
				bi.imm = x.ElemCells
				ms := mallocSpec{pos: base.Pos.String()}
				if base.Track == ir.TrackOn {
					name := x.Hint
					if name == "" {
						name = "heap<" + x.TypeName + ">"
					}
					ms.meta = &rt.AllocMeta{Kind: core.PSEHeap, Name: name, Pos: ms.pos}
				}
				bi.ext = int32(len(cf.mallocs))
				cf.mallocs = append(cf.mallocs, ms)

			case *ir.Free:
				bi.op = opFree
				bi.cost = costFree
				setA(&bi, x.Ptr)

			case *ir.Call:
				bi.op = opCall
				bi.cost = costCall
				spec := callSpec{x: x, pinGated: x.PinGated, void: x.Cls == ir.ClassVoid, pos: base.Pos}
				for _, a := range x.Args {
					spec.args = append(spec.args, it.operand(lay, a))
				}
				if fref := x.DirectTarget(); fref != nil {
					spec.target, spec.extern = fref.Func, fref.Extern
				} else {
					spec.indirect = true
					spec.callee = it.operand(lay, x.Callee)
				}
				bi.ext = int32(len(cf.calls))
				cf.calls = append(cf.calls, spec)

			case *ir.Ret:
				bi.op = opRet
				bi.cost = costRet
				if x.Val != nil {
					bi.flags |= bfHasB
					setA(&bi, x.Val)
				}

			case *ir.Br:
				bi.op = opJmp
				bi.cost = costBr
				patches = append(patches, patch{pc: len(cf.code), a: x.Target})

			case *ir.CondBr:
				bi.op = opCondJmp
				bi.cost = costBr
				setA(&bi, x.Cond)
				patches = append(patches, patch{pc: len(cf.code), a: x.True, b: x.False})

			case *ir.ROIBegin:
				bi.op = opROIBegin
				bi.ext = int32(len(cf.rois))
				cf.rois = append(cf.rois, x.ROI)

			case *ir.ROIEnd:
				bi.op = opROIEnd
				bi.ext = int32(len(cf.rois))
				cf.rois = append(cf.rois, x.ROI)

			case *ir.Mark:
				bi.op = opMark
				bi.ext = int32(len(cf.marks))
				cf.marks = append(cf.marks, x)

			case *ir.RangedEvent:
				bi.op = opRanged
				setA(&bi, x.Base)
				setB(&bi, x.Count)
				bi.imm = x.Stride
				bi.dst = int32(x.ROI.ID)
				if x.IsWrite {
					bi.flags |= bfWrite
				}

			case *ir.FixedClass:
				bi.op = opFixed
				setA(&bi, x.Base)
				bi.imm = x.Cells
				bi.imm2 = int64(x.Sets)
				bi.dst = int32(x.ROI.ID)

			default:
				bi.op = opBadOp
				bi.ext = int32(len(cf.msgs))
				cf.msgs = append(cf.msgs, "interp: unhandled instruction "+in.Mnemonic())
			}

			cf.poss = append(cf.poss, base.Pos)
			cf.code = append(cf.code, bi)
		}
	}

	for _, p := range patches {
		cf.code[p.pc].imm = int64(blockPC[p.a])
		if p.b != nil {
			cf.code[p.pc].imm2 = int64(blockPC[p.b])
		}
	}
	return cf
}

package lang

import "testing"

func kinds(toks []Token) []TokenKind {
	ks := make([]TokenKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := NewLexer("t.mc", src).Tokenize()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lex(t, "int x = 42; float y = 3.5;")
	want := []TokenKind{
		TokKwInt, TokIdent, TokAssign, TokIntLit, TokSemi,
		TokKwFloat, TokIdent, TokAssign, TokFloatLit, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("int literal = %d", toks[3].Int)
	}
	if toks[8].Float != 3.5 {
		t.Errorf("float literal = %g", toks[8].Float)
	}
}

func TestLexOperators(t *testing.T) {
	toks := lex(t, "+ += ++ - -= -- -> * *= / /= % & && == != < <= > >= ! = . || ( ) { } [ ] , ;")
	want := []TokenKind{
		TokPlus, TokPlusAssign, TokPlusPlus, TokMinus, TokMinusAssign,
		TokMinusMinus, TokArrow, TokStar, TokStarAssign, TokSlash,
		TokSlashAssign, TokPercent, TokAmp, TokAndAnd, TokEq, TokNe,
		TokLt, TokLe, TokGt, TokGe, TokNot, TokAssign, TokDot, TokOrOr,
		TokLParen, TokRParen, TokLBrace, TokRBrace, TokLBracket,
		TokRBracket, TokComma, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywords(t *testing.T) {
	toks := lex(t, "int float void fnptr struct if else while for return break continue extern sizeof notakeyword")
	want := []TokenKind{
		TokKwInt, TokKwFloat, TokKwVoid, TokKwFnPtr, TokKwStruct, TokKwIf,
		TokKwElse, TokKwWhile, TokKwFor, TokKwReturn, TokKwBreak,
		TokKwContinue, TokKwExtern, TokKwSizeof, TokIdent, TokEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a // line comment\nb /* block\ncomment */ c")
	got := kinds(toks)
	want := []TokenKind{TokIdent, TokIdent, TokIdent, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	if toks[1].Pos.Line != 2 || toks[2].Pos.Line != 3 {
		t.Errorf("line tracking wrong: %v %v", toks[1].Pos, toks[2].Pos)
	}
}

func TestLexPragmaLine(t *testing.T) {
	toks := lex(t, "x;\n#pragma omp parallel for private(a, b)\ny;")
	if toks[2].Kind != TokPragma {
		t.Fatalf("expected pragma token, got %v", toks[2])
	}
	if toks[2].Text != "omp parallel for private(a, b)" {
		t.Errorf("pragma payload = %q", toks[2].Text)
	}
}

func TestLexFloatForms(t *testing.T) {
	toks := lex(t, "1.5 0.25 2e3 1.5e-2 7")
	if toks[0].Kind != TokFloatLit || toks[0].Float != 1.5 {
		t.Error("1.5")
	}
	if toks[2].Kind != TokFloatLit || toks[2].Float != 2000 {
		t.Errorf("2e3 lexed as %v", toks[2])
	}
	if toks[3].Kind != TokFloatLit || toks[3].Float != 0.015 {
		t.Errorf("1.5e-2 lexed as %v", toks[3])
	}
	if toks[4].Kind != TokIntLit || toks[4].Int != 7 {
		t.Error("7 should stay integral")
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"@",
		"/* unterminated",
		"#include <stdio.h>",
		"\"unterminated string",
	}
	for _, src := range cases {
		if _, err := NewLexer("t.mc", src).Tokenize(); err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "ab\n  cd")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token at %v", toks[1].Pos)
	}
	if got := toks[0].Pos.String(); got != "t.mc:1:1" {
		t.Errorf("pos string %q", got)
	}
}

package lang

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := ParseAndCheck("t.mc", src)
	if err != nil {
		t.Fatalf("parse+check failed: %v\nsource:\n%s", err, src)
	}
	return f
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := ParseAndCheck("t.mc", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none\nsource:\n%s", wantSub, src)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestParseGlobalsAndFunctions(t *testing.T) {
	f := parse(t, `
int g = 5;
float rate = 0.25;
int table[16];
int add(int a, int b) { return a + b; }
void nothing() { return; }
int main() { return add(g, 2); }
`)
	if len(f.Globals) != 3 {
		t.Fatalf("want 3 globals, got %d", len(f.Globals))
	}
	if f.Globals[2].Sym.Type.Kind != KindArray || f.Globals[2].Sym.Type.Len != 16 {
		t.Errorf("table type = %s", f.Globals[2].Sym.Type)
	}
	if len(f.Funcs) != 3 {
		t.Fatalf("want 3 functions, got %d", len(f.Funcs))
	}
	if f.FuncByName("add") == nil || f.FuncByName("missing") != nil {
		t.Error("FuncByName misbehaves")
	}
}

func TestParseStructs(t *testing.T) {
	f := parse(t, `
struct point_t {
	int x;
	int y;
	float w[3];
};
struct point_t gp;
int main() {
	struct point_t p;
	p.x = 1;
	p.y = 2;
	p.w[0] = 0.5;
	gp.x = p.x + p.y;
	return gp.x;
}
`)
	st := f.StructByName("point_t")
	if st == nil {
		t.Fatal("struct not registered")
	}
	if st.Cells() != 5 {
		t.Errorf("struct size = %d cells, want 5", st.Cells())
	}
	if fld := st.FieldByName("w"); fld == nil || fld.Offset != 2 {
		t.Errorf("field w offset wrong: %+v", fld)
	}
	if st.FieldByName("nope") != nil {
		t.Error("unknown field should be nil")
	}
}

func TestParsePointersAndMalloc(t *testing.T) {
	f := parse(t, `
int main() {
	int* p = malloc(10);
	float* q = malloc(4);
	p[3] = 7;
	*q = 1.5;
	q[1] = *q + 1.0;
	int v = *(p + 3);
	free(p);
	free(q);
	return v;
}
`)
	fn := f.FuncByName("main")
	if len(fn.Locals) != 3 {
		t.Fatalf("want 3 locals, got %d", len(fn.Locals))
	}
	if fn.Locals[0].Type.String() != "int*" {
		t.Errorf("p type = %s", fn.Locals[0].Type)
	}
}

func TestParseControlFlow(t *testing.T) {
	parse(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) {
			s += i;
		} else {
			s -= 1;
		}
		if (s > 100) { break; }
		if (s < 0) { continue; }
	}
	int j = 0;
	while (j < 5) {
		j++;
	}
	return s + j;
}
`)
}

func TestParsePrecedence(t *testing.T) {
	f := parse(t, `int main() { return 2 + 3 * 4 - 10 / 2; }`)
	ret := f.FuncByName("main").Body.Stmts[0].(*ReturnStmt)
	// ((2 + (3*4)) - (10/2))
	top, ok := ret.Value.(*Binary)
	if !ok || top.Op != BinSub {
		t.Fatalf("top op = %v", ret.Value)
	}
	l, ok := top.L.(*Binary)
	if !ok || l.Op != BinAdd {
		t.Fatalf("left of - is %v", top.L)
	}
	if inner, ok := l.R.(*Binary); !ok || inner.Op != BinMul {
		t.Fatalf("right of + is %v", l.R)
	}
	if r, ok := top.R.(*Binary); !ok || r.Op != BinDiv {
		t.Fatalf("right of - is %v", top.R)
	}
}

func TestParseLogicalAndComparisons(t *testing.T) {
	parse(t, `
int main() {
	int a = 1;
	int b = 0;
	if (a && !b || a == 1 && b != 2) {
		return 1;
	}
	return 0;
}
`)
}

func TestParseFunctionPointers(t *testing.T) {
	f := parse(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int main() {
	fnptr f = twice;
	int a = f(5);
	f = thrice;
	return a + f(5);
}
`)
	fn := f.FuncByName("main")
	decl := fn.Body.Stmts[0].(*DeclStmt)
	if decl.Sym.Type.Kind != KindFnPtr {
		t.Errorf("f type = %s", decl.Sym.Type)
	}
}

func TestParseExtern(t *testing.T) {
	f := parse(t, `
extern float sqrt(float x);
int main() {
	float r = sqrt(2.0);
	return r * 100.0;
}
`)
	if f.ExternByName("sqrt") == nil {
		t.Fatal("extern not registered")
	}
}

func TestParsePragmaAttachment(t *testing.T) {
	f := parse(t, `
int main() {
	int s = 0;
	#pragma omp parallel for reduction(+: s)
	for (int i = 0; i < 4; i++) {
		s = s + i;
	}
	return s;
}
`)
	fn := f.FuncByName("main")
	ps, ok := fn.Body.Stmts[1].(*PragmaStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T", fn.Body.Stmts[1])
	}
	if ps.Pragma.Kind != PragmaOmpParallelFor {
		t.Errorf("pragma kind = %v", ps.Pragma.Kind)
	}
	if len(ps.Pragma.Reductions) != 1 || ps.Pragma.Reductions[0].Var != "s" {
		t.Errorf("reductions = %v", ps.Pragma.Reductions)
	}
	if _, ok := ps.Body.(*ForStmt); !ok {
		t.Errorf("pragma body is %T", ps.Body)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return 1 }`, "expected ;"},
		{`int main() { int x[0]; return 0; }`, "array length must be positive"},
		{`int f() { return 1; } int f() { return 2; }`, "redefined"},
		{`struct s { int a; }; struct s { int b; };`, "redefined"},
		{`int main() { return (1 + ; }`, "expected expression"},
		{`int main() {`, "unexpected EOF"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return x; }`, "undefined name"},
		{`int main() { y(); return 0; }`, "undefined function"},
		{`int main() { int a; int a; return 0; }`, "redeclared"},
		{`int main() { break; }`, "break outside loop"},
		{`int main() { continue; }`, "continue outside loop"},
		{`void f() { return 1; }`, "void function"},
		{`int f() { return; } int main() { return 0; }`, "must return"},
		{`int main() { 3 = 4; return 0; }`, "not an lvalue"},
		{`int main() { int a; return a.x; }`, "requires a struct"},
		{`int main() { int* p = 0; return p.x; }`, "requires a struct"},
		{`struct s { int a; }; int main() { struct s v; return v.b; }`, "no field"},
		{`int f(int a) { return a; } int main() { return f(1, 2); }`, "2 arguments, want 1"},
		{`int main() { int a = 1.5 % 2; return a; }`, "requires int operands"},
		{`int main() { float* p = 0; int* q = p; return 0; }`, "cannot assign"},
		{`int main() { void v; return 0; }`, "void type"},
		{`struct s; int main() { return 0; }`, "expected"},
		{`int main() { free(3); return 0; }`, "requires a pointer"},
		{`struct s { int a; }; struct s f() { struct s v; return v; }`, "scalar or void"},
		{`struct s { int a; }; int f(struct s v) { return 0; }`, "passed by pointer"},
		{`int main() { int a[3]; int b[3]; a = b; return 0; }`, "aggregate assignment"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestCheckImplicitConversions(t *testing.T) {
	parse(t, `
int main() {
	float f = 3;       // int -> float
	int i = 2.75;      // float -> int
	f = f + i;         // mixed arithmetic
	i = f * 2;
	int* p = 0;        // null pointer constant
	return i;
}
`)
}

func TestCheckArrayDecay(t *testing.T) {
	parse(t, `
int sum(int* a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += a[i];
	}
	return s;
}
int main() {
	int data[8];
	data[0] = 5;
	int* p = data;
	return sum(data, 8) + sum(p, 8);
}
`)
}

func TestCheckAddressTaken(t *testing.T) {
	f := parse(t, `
int main() {
	int x = 1;
	int y = 2;
	int* p = &x;
	*p = 3;
	return x + y;
}
`)
	fn := f.FuncByName("main")
	var x, y *Symbol
	for _, l := range fn.Locals {
		switch l.Name {
		case "x":
			x = l
		case "y":
			y = l
		}
	}
	if !x.AddressTaken {
		t.Error("&x should mark x address-taken")
	}
	if y.AddressTaken {
		t.Error("y is never address-taken")
	}
}

func TestCheckShadowing(t *testing.T) {
	f := parse(t, `
int g = 10;
int main() {
	int g = 1;
	{
		int g = 2;
		g = g + 1;
	}
	return g;
}
`)
	if len(f.FuncByName("main").Locals) != 2 {
		t.Errorf("want 2 locals (both g), got %d", len(f.FuncByName("main").Locals))
	}
}

func TestSymbolIDsUnique(t *testing.T) {
	f := parse(t, `
int a = 1;
int f(int a) { int b = a; return b; }
int main() { int b = 3; return f(b); }
`)
	seen := map[int]bool{}
	check := func(sym *Symbol) {
		if seen[sym.ID] {
			t.Errorf("duplicate symbol ID %d (%s)", sym.ID, sym.Name)
		}
		seen[sym.ID] = true
	}
	for _, g := range f.Globals {
		check(g.Sym)
	}
	for _, fn := range f.Funcs {
		for _, p := range fn.Params {
			check(p)
		}
		for _, l := range fn.Locals {
			check(l)
		}
	}
}

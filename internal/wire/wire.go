// Package wire defines the machine-readable run summary shared by every
// carmot entry point. The CLI's -diag-json file and carmotd's JSON
// responses carry the same document, so one supervisor-side parser can
// triage a run regardless of how it was launched.
package wire

import (
	"encoding/json"

	"carmot/internal/rt"
)

// Outcome kinds. The CLI derives its kind from the process exit code;
// the daemon additionally distinguishes admission and lifecycle
// failures that a one-shot process cannot hit.
const (
	KindOK       = "ok"       // profile completed, recommendations valid
	KindError    = "error"    // compile/runtime/analysis failure
	KindUsage    = "usage"    // malformed invocation or request
	KindBudget   = "budget"   // budget or deadline breached; partial PSECs
	KindShed     = "shed"     // admission control rejected the request
	KindDraining = "draining" // server is shutting down; retry elsewhere
	KindInternal = "internal" // serving-layer fault, not the profile's
)

// Summary is the triage document: enough for a supervisor process (or a
// carmotd client) to classify a run without parsing human output.
type Summary struct {
	// ExitCode mirrors the CLI exit codes: 0 success, 1 analysis or
	// runtime error, 2 usage error, 3 budget/deadline exceeded. Daemon
	// responses reuse the same numbering for completed profiles.
	ExitCode int `json:"exit_code"`
	// Kind classifies the outcome (one of the Kind* constants).
	Kind string `json:"kind"`
	// Error is the failure text, empty on success.
	Error string `json:"error,omitempty"`
	// RetryAfterMs is a client backoff hint, set only on shed and
	// draining responses.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Attempts is how many profile attempts the serving layer made
	// (journal-replay retries included); zero when no profile started.
	Attempts int `json:"attempts,omitempty"`
	// Diagnostics is the runtime's account of the run; nil on paths
	// that never profiled (usage/compile errors, shed requests).
	Diagnostics *rt.Diagnostics `json:"diagnostics"`
}

// Streaming event names: the `event` discriminator of each NDJSON line
// a streaming profile request (POST /v1/profile?stream=1) receives.
// Events arrive in order: one compile, interleaved progress/degrade
// (and attempt, when the serving layer retries a degraded session),
// and exactly one terminal result.
const (
	EventCompile  = "compile"  // the program is compiled; the session is about to run
	EventProgress = "progress" // periodic pipeline-volume snapshot
	EventDegrade  = "degrade"  // a degradation-ladder step or supervisor intervention happened
	EventAttempt  = "attempt"  // a degraded attempt is being retried
	EventResult   = "result"   // terminal: the full response document
)

// StreamEvent is one line of a streaming profile response. Fields are a
// union over the event kinds; unused fields are omitted on the wire.
type StreamEvent struct {
	// Event is one of the Event* constants.
	Event string `json:"event"`
	// Compile: whether the compiled program came from the program cache,
	// and how many ROIs it carries.
	CacheHit bool `json:"cache_hit,omitempty"`
	ROIs     int  `json:"rois,omitempty"`
	// Progress / degrade: the pipeline-volume snapshot (events accepted,
	// events shed by caps, batches pushed, degradation-ladder steps,
	// supervisor interventions so far).
	Events     uint64 `json:"events,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Batches    int    `json:"batches,omitempty"`
	Downgrades int    `json:"downgrades,omitempty"`
	Recoveries int    `json:"recoveries,omitempty"`
	// Attempt: the 1-based attempt number about to run.
	Attempt int `json:"attempt,omitempty"`
	// Result: the HTTP status the non-streaming path would have used,
	// and the full response document (compact-encoded so the line
	// framing holds).
	Status int             `json:"status,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// EncodeLine renders the event as one compact NDJSON line.
func (e *StreamEvent) EncodeLine() ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// KindForExit maps a CLI exit code onto its outcome kind.
func KindForExit(code int) string {
	switch code {
	case 0:
		return KindOK
	case 2:
		return KindUsage
	case 3:
		return KindBudget
	default:
		return KindError
	}
}

// Encode renders the summary as indented JSON with a trailing newline,
// the format both the -diag-json file and the daemon body use.
func (s *Summary) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package interp

// The bytecode engine's execution loop: a flat program counter over the
// compiled instruction stream, dispatched by a switch on a dense uint8
// opcode. It must stay observationally identical to exec.go's tree-walker
// — same counters, same events in the same order, same error text — so
// every case mirrors its tree-walker counterpart statement for statement;
// the only differences are pre-resolved operands, the absence of
// per-instruction interface dispatch, compile-time trackability (the
// opLoadU/opStoreU cases contain no emit branch, no coalescer check, and
// no event construction; the T cases emit unconditionally), and
// superinstructions, whose cases execute both halves of a fused pair
// with the exact step/budget/cost bookkeeping the unfused pair would
// have performed.

import (
	"fmt"
	"math"

	"carmot/internal/core"
	"carmot/internal/ir"
	"carmot/internal/lang"
	"carmot/internal/native"
	"carmot/internal/pinsim"
)

// fetch resolves a pre-compiled operand against the frame.
func fetch(fr *frame, mode uint8, payload uint64) uint64 {
	switch mode {
	case opdImm:
		return payload
	case opdTemp:
		return fr.temps[payload]
	case opdArg:
		return fr.args[payload]
	default: // opdFrame
		return fr.base + payload
	}
}

// costBC mirrors addCost for a pre-costed bytecode word.
func (it *Interp) costBC(in *bcInstr) {
	c := int64(in.cost)
	it.cycles += c
	if in.flags&bfSerial != 0 {
		it.serialCycles += c
	}
}

// costA/costB accrue one half of a fused word's cost; the halves carry
// independent serial flags because the instrumentation planner may mark
// them differently.
func (it *Interp) costA(in *bcInstr, c int64) {
	it.cycles += c
	if in.flags&bfSerial != 0 {
		it.serialCycles += c
	}
}

func (it *Interp) costB(in *bcInstr, c int64) {
	it.cycles += c
	if in.flags&bfSerialB != 0 {
		it.serialCycles += c
	}
}

// stepSlow is the dispatch loop's cold path: the step-limit error and the
// periodic budget probe, reached once per 8192 steps (or at the limit).
// It also advances stepStop, the single precomputed threshold the hot
// path compares against — the next mask-aligned probe boundary, clamped
// to the step limit so the limit error still fires at exactly
// maxSteps+1. Folding the limit check and the probe alignment test into
// one comparison saves a branch per dispatched step, which is measurable
// at interpreter dispatch rates.
func (it *Interp) stepSlow(maxSteps int64) error {
	if it.steps > maxSteps {
		return &BudgetError{Reason: fmt.Sprintf("step limit exceeded (%d)", it.opts.MaxSteps)}
	}
	next := (it.steps | budgetCheckMask) + 1
	if next > maxSteps {
		next = maxSteps // re-enters at the limit; the check above errors past it
	}
	it.stepStop = next
	if it.steps&budgetCheckMask == 0 {
		return it.checkBudget()
	}
	return nil
}

// binFast evaluates the bin opcodes that dominate fused words (integer
// index math, float multiply-accumulate, loop-bound compares). It stays
// under the inlining budget, so the hot fused cases skip the call into
// binEval's full switch; anything else (notably the faulting div/rem
// pair) falls back with ok=false.
func binFast(op bcOp, av, bv uint64) (v uint64, ok bool) {
	switch op {
	case opAddI:
		return av + bv, true
	case opMulF:
		return math.Float64bits(math.Float64frombits(av) * math.Float64frombits(bv)), true
	case opAddF:
		return math.Float64bits(math.Float64frombits(av) + math.Float64frombits(bv)), true
	case opLtI:
		if int64(av) < int64(bv) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// binEval computes one binary opcode over operand bits, returning a
// non-empty message for the tree-walker's arithmetic faults.
func binEval(op bcOp, av, bv uint64) (uint64, string) {
	switch op {
	case opAddI:
		return av + bv, ""
	case opSubI:
		return av - bv, ""
	case opMulI:
		return av * bv, ""
	case opDivI:
		if int64(bv) == 0 {
			return 0, "integer division by zero"
		}
		return uint64(int64(av) / int64(bv)), ""
	case opRemI:
		if int64(bv) == 0 {
			return 0, "integer remainder by zero"
		}
		return uint64(int64(av) % int64(bv)), ""
	case opEqI:
		return b2i(av == bv), ""
	case opNeI:
		return b2i(av != bv), ""
	case opLtI:
		return b2i(int64(av) < int64(bv)), ""
	case opLeI:
		return b2i(int64(av) <= int64(bv)), ""
	case opGtI:
		return b2i(int64(av) > int64(bv)), ""
	case opGeI:
		return b2i(int64(av) >= int64(bv)), ""
	}
	a, b := math.Float64frombits(av), math.Float64frombits(bv)
	switch op {
	case opAddF:
		return math.Float64bits(a + b), ""
	case opSubF:
		return math.Float64bits(a - b), ""
	case opMulF:
		return math.Float64bits(a * b), ""
	case opDivF:
		return math.Float64bits(a / b), ""
	case opEqF:
		return b2i(a == b), ""
	case opNeF:
		return b2i(a != b), ""
	case opLtF:
		return b2i(a < b), ""
	case opLeF:
		return b2i(a <= b), ""
	case opGtF:
		return b2i(a > b), ""
	default: // opGeF
		return b2i(a >= b), ""
	}
}

func (it *Interp) execBC(fr *frame) (uint64, error) {
	cf := fr.cf
	code := cf.code
	r := it.opts.Runtime
	maxSteps := it.opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = math.MaxInt64 // no limit: one compare instead of two
	}
	// The memory image is loop-local; every op that can grow it (malloc's
	// ensure, callees, natives) refreshes the local below.
	mem := it.mem
	hits := cf.hits
	// The step counter lives in a local so the hot loop's increment and
	// stepStop compare touch a register instead of the interpreter struct.
	// The cold paths that read it.steps (stepSlow's probe alignment, the
	// callee's own loop, Result construction) see a synced value: the loop
	// writes it back before stepSlow and before bcCall, and the monotonic
	// guard below covers every other exit — including panics unwinding out
	// of runtime emits — without clobbering a callee's newer count.
	steps := it.steps
	defer func() {
		if steps > it.steps {
			it.steps = steps
		}
	}()
	pc := 0
	for {
		in := &code[pc]
		cur := pc
		pc++
		steps++
		if steps >= it.stepStop {
			it.steps = steps
			if berr := it.stepSlow(maxSteps); berr != nil {
				return 0, berr
			}
		}
		if hits != nil {
			hits[cur]++
		}

		switch in.op {
		case opAlloca:
			addr := fr.base + in.a
			fr.temps[in.dst] = addr
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitAlloc(addr, in.imm, it.curCS(), cf.allocas[in.ext])
				it.toolCycles += costAllocEvent
			}

		case opLoadU:
			// Untracked load: no emit branch, no runtime check, no event.
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid load address %d", addr)
			}
			fr.temps[in.dst] = mem[addr]
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}

		case opLoadT:
			// Tracked load: the emit is unconditional by construction.
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid load address %d", addr)
			}
			fr.temps[in.dst] = mem[addr]
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			r.EmitAccess(addr, false, in.site, it.frameCS(fr))
			it.toolCycles += it.eventCost

		case opStoreU:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid store address %d", addr)
			}
			mem[addr] = fetch(fr, in.bmode, in.b)
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}

		case opStoreT:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid store address %d", addr)
			}
			val := fetch(fr, in.bmode, in.b)
			mem[addr] = val
			it.costBC(in)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if in.flags&bfSets != 0 {
				r.EmitAccess(addr, true, in.site, it.frameCS(fr))
				it.toolCycles += it.eventCost
			}
			if in.flags&bfEscape != 0 && val != 0 && val < uint64(len(mem)) {
				r.EmitEscape(addr, val)
				it.toolCycles += costEscapeEvent
			}

		case opAddI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) + fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opSubI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) - fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opMulI:
			fr.temps[in.dst] = fetch(fr, in.amode, in.a) * fetch(fr, in.bmode, in.b)
			it.costBC(in)
		case opDivI:
			b := int64(fetch(fr, in.bmode, in.b))
			if b == 0 {
				return 0, it.errf(cf.poss[cur], "integer division by zero")
			}
			fr.temps[in.dst] = uint64(int64(fetch(fr, in.amode, in.a)) / b)
			it.costBC(in)
		case opRemI:
			b := int64(fetch(fr, in.bmode, in.b))
			if b == 0 {
				return 0, it.errf(cf.poss[cur], "integer remainder by zero")
			}
			fr.temps[in.dst] = uint64(int64(fetch(fr, in.amode, in.a)) % b)
			it.costBC(in)
		case opEqI:
			fr.temps[in.dst] = b2i(fetch(fr, in.amode, in.a) == fetch(fr, in.bmode, in.b))
			it.costBC(in)
		case opNeI:
			fr.temps[in.dst] = b2i(fetch(fr, in.amode, in.a) != fetch(fr, in.bmode, in.b))
			it.costBC(in)
		case opLtI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) < int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opLeI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) <= int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opGtI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) > int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)
		case opGeI:
			fr.temps[in.dst] = b2i(int64(fetch(fr, in.amode, in.a)) >= int64(fetch(fr, in.bmode, in.b)))
			it.costBC(in)

		case opAddF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a + b)
			it.costBC(in)
		case opSubF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a - b)
			it.costBC(in)
		case opMulF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a * b)
			it.costBC(in)
		case opDivF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = math.Float64bits(a / b)
			it.costBC(in)
		case opEqF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a == b)
			it.costBC(in)
		case opNeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a != b)
			it.costBC(in)
		case opLtF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a < b)
			it.costBC(in)
		case opLeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a <= b)
			it.costBC(in)
		case opGtF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a > b)
			it.costBC(in)
		case opGeF:
			a, b := f2(fr, in)
			fr.temps[in.dst] = b2i(a >= b)
			it.costBC(in)

		case opConvItoF:
			fr.temps[in.dst] = math.Float64bits(float64(int64(fetch(fr, in.amode, in.a))))
			it.costBC(in)
		case opConvFtoI:
			fr.temps[in.dst] = uint64(int64(math.Float64frombits(fetch(fr, in.amode, in.a))))
			it.costBC(in)

		case opGEP:
			b := int64(fetch(fr, in.amode, in.a))
			if in.flags&bfHasB != 0 {
				b += int64(fetch(fr, in.bmode, in.b)) * in.imm
			}
			b += in.imm2
			fr.temps[in.dst] = uint64(b)
			it.costBC(in)

		case opMalloc:
			count := int64(fetch(fr, in.amode, in.a))
			if count < 0 {
				return 0, it.errf(cf.poss[cur], "malloc with negative count %d", count)
			}
			cells := count * in.imm
			if cells == 0 {
				cells = 1
			}
			ms := &cf.mallocs[in.ext]
			addr := it.heapTop
			it.heapTop += uint64(cells)
			it.ensure(it.heapTop)
			mem = it.mem
			it.liveHeap[addr] = heapRec{cells: cells, pos: ms.pos}
			fr.temps[in.dst] = addr
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitAlloc(addr, cells, it.curCS(), ms.meta)
				it.toolCycles += costAllocEvent
			}

		case opFree:
			addr := fetch(fr, in.amode, in.a)
			if _, ok := it.liveHeap[addr]; !ok {
				return 0, it.errf(cf.poss[cur], "free of invalid pointer %d", addr)
			}
			delete(it.liveHeap, addr)
			it.costBC(in)
			if r != nil && in.flags&bfTrack != 0 {
				r.EmitFree(addr)
				it.toolCycles += costAllocEvent
			}

		case opCall:
			spec := &cf.calls[in.ext]
			it.steps = steps // the callee's loop continues the count
			res, err := it.bcCall(spec, fr)
			steps = it.steps // reload: the callee advanced it
			if err != nil {
				return 0, err
			}
			mem = it.mem // callees and natives may have grown the image
			if !spec.void {
				fr.temps[in.dst] = res
			}
			it.costBC(in)

		case opRet:
			it.costBC(in)
			if in.flags&bfHasB != 0 {
				return fetch(fr, in.amode, in.a), nil
			}
			return 0, nil

		case opJmp:
			it.costBC(in)
			pc = int(in.imm)

		case opCondJmp:
			it.costBC(in)
			if fetch(fr, in.amode, in.a) != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.imm2)
			}

		case opROIBegin:
			roi := cf.rois[in.ext]
			if r != nil {
				r.BeginROI(roi.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(true, roi, it.cycles, it.serialCycles)
			}

		case opROIEnd:
			roi := cf.rois[in.ext]
			if r != nil {
				r.EndROI(roi.ID)
			}
			if it.opts.Sink != nil {
				it.opts.Sink.ROIBoundary(false, roi, it.cycles, it.serialCycles)
			}

		case opMark:
			if it.opts.Sink != nil {
				m := cf.marks[in.ext]
				it.opts.Sink.Mark(m.Kind, m.Region, m.Task, it.cycles, it.serialCycles)
			}

		case opRanged:
			if r != nil {
				addr := fetch(fr, in.amode, in.a)
				count := int64(fetch(fr, in.bmode, in.b))
				if count > 0 {
					r.EmitRange(in.dst, in.flags&bfWrite != 0, addr, count, uint64(in.imm))
					it.toolCycles += costRangedEmit
				}
			}

		case opFixed:
			if r != nil {
				addr := fetch(fr, in.amode, in.a)
				r.EmitFixed(in.dst, addr, in.imm, core.SetMask(in.imm2))
				it.toolCycles += costFixedEmit
			}

		case opBadOp:
			return 0, it.errf(cf.poss[cur], "%s", cf.msgs[in.ext])

		case opFJmpEqI, opFJmpNeI, opFJmpLtI, opFJmpLeI, opFJmpGtI, opFJmpGeI:
			a := int64(fetch(fr, in.amode, in.a))
			b := int64(fetch(fr, in.bmode, in.b))
			var cond uint64
			switch in.op {
			case opFJmpEqI:
				cond = b2i(a == b)
			case opFJmpNeI:
				cond = b2i(a != b)
			case opFJmpLtI:
				cond = b2i(a < b)
			case opFJmpLeI:
				cond = b2i(a <= b)
			case opFJmpGtI:
				cond = b2i(a > b)
			default:
				cond = b2i(a >= b)
			}
			fr.temps[in.dst] = cond
			it.costA(in, costBin)
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			it.costB(in, costBr)
			if cond != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.imm2)
			}

		case opFJmpEqF, opFJmpNeF, opFJmpLtF, opFJmpLeF, opFJmpGtF, opFJmpGeF:
			a, b := f2(fr, in)
			var cond uint64
			switch in.op {
			case opFJmpEqF:
				cond = b2i(a == b)
			case opFJmpNeF:
				cond = b2i(a != b)
			case opFJmpLtF:
				cond = b2i(a < b)
			case opFJmpLeF:
				cond = b2i(a <= b)
			case opFJmpGtF:
				cond = b2i(a > b)
			default:
				cond = b2i(a >= b)
			}
			fr.temps[in.dst] = cond
			it.costA(in, costBin)
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			it.costB(in, costBr)
			if cond != 0 {
				pc = int(in.imm)
			} else {
				pc = int(in.imm2)
			}

		case opFGEPLoadU, opFGEPLoadT:
			b := int64(fetch(fr, in.amode, in.a))
			if in.flags&bfHasB != 0 {
				b += int64(fetch(fr, in.bmode, in.b)) * in.imm
			}
			b += in.imm2
			addr := uint64(b)
			fi := &cf.fused[in.ext]
			fr.temps[fi.dstA] = addr
			it.costA(in, costGEP)
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(fi.posB, "invalid load address %d", addr)
			}
			fr.temps[in.dst] = mem[addr]
			it.costB(in, costLoad)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if in.op == opFGEPLoadT {
				r.EmitAccess(addr, false, in.site, it.frameCS(fr))
				it.toolCycles += it.eventCost
			}

		case opFGEPStoreU, opFGEPStoreT:
			b := int64(fetch(fr, in.amode, in.a))
			if in.flags&bfHasB != 0 {
				b += int64(fetch(fr, in.bmode, in.b)) * in.imm
			}
			b += in.imm2
			addr := uint64(b)
			fi := &cf.fused[in.ext]
			fr.temps[fi.dstA] = addr
			it.costA(in, costGEP)
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(fi.posB, "invalid store address %d", addr)
			}
			val := fetch(fr, in.cmode, in.c)
			mem[addr] = val
			it.costB(in, costStore)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			if in.op == opFGEPStoreT {
				if in.flags&bfSets != 0 {
					r.EmitAccess(addr, true, in.site, it.frameCS(fr))
					it.toolCycles += it.eventCost
				}
				if in.flags&bfEscape != 0 && val != 0 && val < uint64(len(mem)) {
					r.EmitEscape(addr, val)
					it.toolCycles += costEscapeEvent
				}
			}

		case opFLoadLoadU:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid load address %d", addr)
			}
			fr.temps[in.dst] = mem[addr]
			it.costA(in, costLoad)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			// The second address is fetched after the first load lands, so
			// a dependent pair behaves exactly like the unfused stream.
			addr = fetch(fr, in.bmode, in.b)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.fused[in.ext].posB, "invalid load address %d", addr)
			}
			fr.temps[in.imm] = mem[addr]
			it.costB(in, costLoad)
			if in.flags&bfSymB != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}

		case opFLoadBin:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid load address %d", addr)
			}
			fi := &cf.fused[in.ext]
			fr.temps[fi.dstA] = mem[addr]
			it.costA(in, costLoad)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			av, bv := fetch(fr, in.bmode, in.b), fetch(fr, in.cmode, in.c)
			v, ok := binFast(bcOp(in.imm&0xff), av, bv)
			if !ok {
				var msg string
				v, msg = binEval(bcOp(in.imm&0xff), av, bv)
				if msg != "" {
					return 0, it.errf(fi.posB, "%s", msg)
				}
			}
			fr.temps[in.dst] = v
			it.costB(in, in.imm>>8)

		case opFBinStoreU:
			av, bv := fetch(fr, in.amode, in.a), fetch(fr, in.bmode, in.b)
			v, ok := binFast(bcOp(in.imm&0xff), av, bv)
			if !ok {
				var msg string
				v, msg = binEval(bcOp(in.imm&0xff), av, bv)
				if msg != "" {
					return 0, it.errf(cf.poss[cur], "%s", msg)
				}
			}
			fr.temps[in.dst] = v
			it.costA(in, in.imm>>8)
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			addr := fetch(fr, in.cmode, in.c)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.fused[in.ext].posB, "invalid store address %d", addr)
			}
			mem[addr] = v
			it.costB(in, costStore)
			if in.flags&bfSymB != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}

		case opFStoreUJmp:
			addr := fetch(fr, in.amode, in.a)
			if addr == 0 || addr >= uint64(len(mem)) {
				return 0, it.errf(cf.poss[cur], "invalid store address %d", addr)
			}
			mem[addr] = fetch(fr, in.bmode, in.b)
			it.costA(in, costStore)
			if in.flags&bfSym != 0 {
				it.varAccesses++
			} else {
				it.memAccesses++
			}
			steps++
			if steps >= it.stepStop {
				it.steps = steps
				if err := it.stepSlow(maxSteps); err != nil {
					return 0, err
				}
			}
			it.costB(in, costBr)
			pc = int(in.imm)

		default:
			return 0, it.errf(cf.poss[cur], "interp: bad opcode %d", in.op)
		}
	}
}

// f2 fetches both operands as floats.
func f2(fr *frame, in *bcInstr) (float64, float64) {
	return math.Float64frombits(fetch(fr, in.amode, in.a)),
		math.Float64frombits(fetch(fr, in.bmode, in.b))
}

// bcCall evaluates a pre-bound call site's arguments into the shared
// scratch and dispatches, mirroring execCall. Each site carries a
// monomorphic inline cache: direct sites resolve the callee's layout,
// compiled code, and native spec once; indirect sites cache the last
// function-pointer value they decoded and fall back to the generic
// decode on mismatch.
func (it *Interp) bcCall(spec *callSpec, fr *frame) (uint64, error) {
	mark := len(it.argScratch)
	for i := range spec.args {
		it.argScratch = append(it.argScratch, fetch(fr, spec.args[i].mode, spec.args[i].val))
	}
	args := it.argScratch[mark:]

	fn, ext := spec.target, spec.extern
	var lay *funcLayout
	var ccf *compiledFunc
	var nspec *native.Spec
	if spec.indirect {
		if id := fetch(fr, spec.callee.mode, spec.callee.val); id == spec.icID && id != 0 {
			fn, ext = spec.icFn, spec.icExt
			lay, ccf, nspec = spec.icLay, spec.icCF, spec.icNspec
		} else {
			switch {
			case id == 0:
				it.argScratch = it.argScratch[:mark]
				return 0, it.errf(spec.pos, "call through null function pointer")
			case id <= uint64(len(it.funcIDs)):
				fn = it.funcIDs[id-1]
				lay, ccf = it.layouts[fn], it.compiledOf(fn)
				spec.icID, spec.icFn, spec.icExt = id, fn, nil
				spec.icLay, spec.icCF, spec.icNspec = lay, ccf, nil
			case id <= uint64(len(it.funcIDs)+len(it.externIDs)):
				ext = it.externIDs[id-uint64(len(it.funcIDs))-1]
				nspec = native.Lookup(ext.Name)
				spec.icID, spec.icFn, spec.icExt = id, nil, ext
				spec.icLay, spec.icCF, spec.icNspec = nil, nil, nspec
			default:
				it.argScratch = it.argScratch[:mark]
				return 0, it.errf(spec.pos, "call through invalid function pointer %d", id)
			}
		}
	}
	var res uint64
	var err error
	if fn != nil {
		if len(args) != len(fn.Params) {
			it.argScratch = it.argScratch[:mark]
			return 0, it.errf(spec.pos, "call to %s with %d args, want %d", fn.Name, len(args), len(fn.Params))
		}
		if spec.pinGated && it.opts.Runtime != nil {
			// The Pintool probes this site because it cannot rule out a
			// jump into precompiled code.
			it.toolCycles += costPinCall
		}
		if ccf == nil {
			// Direct site: fill the cache on first execution.
			if spec.dCF == nil {
				spec.dLay, spec.dCF = it.layouts[fn], it.compiledOf(fn)
			}
			lay, ccf = spec.dLay, spec.dCF
		}
		res, err = it.callFast(fn, lay, ccf, args, spec.pos)
	} else {
		if nspec == nil && !spec.indirect {
			// Direct extern site: one registry lookup, ever.
			if spec.dNspec == nil {
				spec.dNspec = native.Lookup(ext.Name)
			}
			nspec = spec.dNspec
		}
		res, err = it.callExternSpec(spec.x, ext, nspec, args, spec.pos)
	}
	it.argScratch = it.argScratch[:mark]
	return res, err
}

// callFast is the bytecode engine's call path: identical to call() but
// with the callee's layout and compiled code supplied by the call site's
// inline cache instead of per-call map lookups.
func (it *Interp) callFast(fn *ir.Func, lay *funcLayout, ccf *compiledFunc, args []uint64, callPos lang.Pos) (uint64, error) {
	if it.stackTop+lay.cells > it.stackLimit {
		return 0, it.errf(callPos, "stack overflow calling %s", fn.Name)
	}
	if len(it.frames) > 4096 {
		return 0, it.errf(callPos, "call depth limit exceeded in %s", fn.Name)
	}
	fr := it.pushFrame(fn, args, callPos)
	it.stackTop += lay.cells
	// Fresh stack storage is zeroed (frames recycle cells).
	clear(it.mem[fr.base:it.stackTop])

	fr.cf = ccf
	ret, err := it.execBC(fr)

	// Retire this frame's tracked stack PSEs.
	if r := it.opts.Runtime; r != nil && err == nil && len(lay.tracked) > 0 {
		for _, a := range lay.tracked {
			r.EmitFree(fr.base + lay.offsets[a.Index])
			it.toolCycles += costAllocEvent
		}
	}
	it.frames = it.frames[:len(it.frames)-1]
	it.stackTop = fr.base
	return ret, err
}

// callExternSpec is callExtern with the native registry lookup hoisted to
// the call site's inline cache; a nil spec still reports the missing
// native with the tree-walker's exact error text.
func (it *Interp) callExternSpec(x *ir.Call, ext *ir.Extern, spec *native.Spec, args []uint64, pos lang.Pos) (uint64, error) {
	if spec == nil {
		return 0, it.errf(pos, "extern %s has no native implementation", ext.Name)
	}
	if spec.ArgCount >= 0 && spec.ArgCount != len(args) {
		return 0, it.errf(pos, "extern %s called with %d args, want %d", ext.Name, len(args), spec.ArgCount)
	}
	var env native.Env = it
	// The Pin-analog tracer shadows this call when the planner could not
	// prove the site never reaches precompiled code; the probe itself
	// costs even when the callee turns out not to touch memory (§4.4
	// opt 6 exists to avoid exactly this).
	var tracer *pinsim.Tracer
	if x.PinGated && it.opts.Runtime != nil {
		it.toolCycles += costPinCall
		if spec.AccessesMemory {
			tracer = pinsim.NewTracer(it, it.opts.Runtime, it.useCS())
			env = tracer
		}
	}
	res := spec.Impl(env, args)
	if tracer != nil {
		reads, writes := tracer.Counts()
		it.toolCycles += int64(reads+writes) * costPinAccess
	}
	cost := spec.Cost
	if spec.AccessesMemory && len(args) > 0 {
		// Charge per-cell work using the count argument by convention
		// (the last integer argument of the memory natives).
		n := int64(args[len(args)-1])
		if n > 0 {
			cost += n * costPerCell
		}
	}
	it.addCost(ir.Base(x), cost)
	return res, nil
}

package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica indexes. Each replica
// owns vnodesPer virtual nodes so keys spread evenly even with three
// replicas, and a key's failover order is the clockwise walk from its
// position — stable under any subset of replicas being down, so the
// same key always prefers the same replica (program and result caches
// stay hot) and always fails over to the same second choice (the
// second-choice cache warms exactly when it is needed).
//
// The ring is immutable after construction: liveness is not a ring
// property here. Removing a dead replica from the ring would reshuffle
// a slice of the keyspace onto every survivor; skipping it during the
// walk moves only its own keys, one hop, and they snap back the moment
// it returns.
type ring struct {
	vnodes []vnode // sorted by hash
	n      int     // distinct replicas
}

type vnode struct {
	hash uint64
	idx  int
}

func newRing(n, vnodesPer int) *ring {
	if vnodesPer < 1 {
		vnodesPer = 1
	}
	r := &ring{n: n, vnodes: make([]vnode, 0, n*vnodesPer)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodesPer; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("replica-%d#%d", i, v)), idx: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
	return r
}

// order returns every replica index exactly once, in the clockwise walk
// order from key's ring position: order[0] is the key's home replica,
// order[1] the first failover target, and so on.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	for i := 0; len(out) < r.n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.idx] {
			seen[v.idx] = true
			out = append(out, v.idx)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Package bench contains the MiniC analogs of the paper's evaluation
// programs (§5): eight NAS kernels, four PARSEC applications, and three
// SPEC CPU 2017 programs, plus the STATS workloads of §5.3. Each analog
// reproduces the access-pattern structure that drives the paper's result
// for that benchmark: reductions, privatizable temporaries,
// cross-iteration RAW dependences, pthread-style sections, barrier/master
// SPMD phases (ep, nab), and nab's multi-file reference cycle.
package bench

import "fmt"

// Suite names.
const (
	SuiteNAS    = "NAS"
	SuitePARSEC = "PARSEC"
	SuiteSPEC   = "SPEC CPU 2017"
)

// Benchmark is one evaluation program.
type Benchmark struct {
	Name  string
	Suite string
	// Source renders the program at a given problem scale.
	Source func(scale int) string
	// DevScale is the small "test/class A/simsmall" input used for
	// overhead measurements; ProdScale the "reference/class C/native"
	// input used for speedup measurements (§5).
	DevScale  int
	ProdScale int
	// PthreadStyle marks benchmarks whose original parallelism is
	// explicit threads, modeled as parallel sections (§5.1: canneal,
	// swaptions).
	PthreadStyle bool
	// SectionsOnly marks benchmarks whose main parallelism comes from
	// parallel sections with barrier/master synchronization, which
	// CARMOT does not generate (§5.1: ep, nab underperform).
	SectionsOnly bool
	Notes        string
}

// All returns the fifteen Figure 6/7 benchmarks in display order.
func All() []Benchmark {
	return []Benchmark{
		btBench(), cgBench(), epBench(), ftBench(), isBench(),
		luBench(), mgBench(), spBench(),
		blackscholesBench(), cannealBench(), streamclusterBench(), swaptionsBench(),
		lbmBench(), nabBench(), xzBench(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range StatsWorkloads() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

package bench_test

import (
	"fmt"
	"testing"

	"carmot"
	"carmot/internal/bench"
	"carmot/internal/core"
)

// aggregateSets folds a PSEC's elements by source identity (kind, name,
// declaration/allocation site), merging the Sets of dynamic instances
// that differ only by allocation call stack. Comparisons between naive
// and optimized runs must use this view: call-stack interning order is an
// implementation detail.
func aggregateSets(p *core.PSEC) map[string]core.SetMask {
	out := map[string]core.SetMask{}
	for _, e := range p.Elements {
		if e.Sets == 0 {
			continue
		}
		key := fmt.Sprintf("%s|%s|%s", e.PSE.Kind, e.PSE.Name, e.PSE.AllocPos)
		out[key] = core.MergeSets(out[key], e.Sets)
	}
	return out
}

// TestAllBenchmarksCompile lowers every benchmark at dev scale and checks
// basic IR sanity.
func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range append(bench.All(), bench.StatsWorkloads()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := carmot.Compile(b.Name+".mc", b.Source(b.DevScale), carmot.CompileOptions{
				ProfileOmpRegions: true, ProfileStatsRegions: true,
			})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if prog.IR.FuncByName("main") == nil {
				t.Fatal("no main function")
			}
		})
	}
}

// TestAllBenchmarksExecute runs every benchmark uninstrumented and checks
// the run is deterministic.
func TestAllBenchmarksExecute(t *testing.T) {
	for _, b := range append(bench.All(), bench.StatsWorkloads()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := carmot.Compile(b.Name+".mc", b.Source(b.DevScale), carmot.CompileOptions{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			r1, err := prog.Execute(nil, 500_000_000)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			r2, err := prog.Execute(nil, 500_000_000)
			if err != nil {
				t.Fatalf("re-execute: %v", err)
			}
			if r1.Exit != r2.Exit {
				t.Errorf("nondeterministic exit: %d vs %d", r1.Exit, r2.Exit)
			}
			if r1.Steps == 0 {
				t.Error("no instructions executed")
			}
		})
	}
}

// TestAllBenchmarksProfileAgreement profiles every benchmark under both
// the naive baseline and the optimized CARMOT configuration and checks
// that shared PSEC elements classify identically (the optimizations must
// not change the characterization).
func TestAllBenchmarksProfileAgreement(t *testing.T) {
	for _, b := range append(bench.All(), bench.StatsWorkloads()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opts := carmot.CompileOptions{ProfileOmpRegions: true, ProfileStatsRegions: true}
			progC, err := carmot.Compile(b.Name+".mc", b.Source(b.DevScale), opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			progN, err := carmot.Compile(b.Name+".mc", b.Source(b.DevScale), opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(progC.ROIs()) == 0 {
				t.Fatal("benchmark has no ROI")
			}
			resC, err := progC.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP, MaxSteps: 500_000_000})
			if err != nil {
				t.Fatalf("carmot profile: %v", err)
			}
			resN, err := progN.Profile(carmot.ProfileOptions{UseCase: carmot.UseOpenMP, Naive: true, MaxSteps: 500_000_000})
			if err != nil {
				t.Fatalf("naive profile: %v", err)
			}
			for roiID := range resC.PSECs {
				cAgg := aggregateSets(resC.PSECs[roiID])
				nAgg := aggregateSets(resN.PSECs[roiID])
				for key, cSets := range cAgg {
					nSets, ok := nAgg[key]
					if !ok {
						t.Errorf("roi %d: element %q missing from naive PSEC", roiID, key)
						continue
					}
					if nSets != cSets {
						t.Errorf("roi %d: element %q carmot=%s naive=%s", roiID, key, cSets, nSets)
					}
				}
			}
		})
	}
}

package ir

import "carmot/internal/lang"

// ParRegionKind classifies a parallel region.
type ParRegionKind int

// Parallel region kinds. RegionSections models both OpenMP parallel
// sections and the pthread-style parallelism of benchmarks whose original
// parallelism comes from explicit threads (§5.1: the ROI is then the
// thread entry function).
const (
	RegionFor ParRegionKind = iota
	RegionSections
	RegionTaskGroup // a loop spawning omp tasks
	RegionCandidate // a carmot-roi loop: a candidate for CARMOT parallelism
)

var parRegionKindNames = [...]string{"for", "sections", "taskgroup", "candidate"}

// String returns the kind name.
func (k ParRegionKind) String() string { return parRegionKindNames[k] }

// ParRegion is a statically identified parallel (or parallelizable)
// region. The multicore simulator replays the serial execution and uses
// the region's markers to compute the parallel makespan.
type ParRegion struct {
	ID     int
	Kind   ParRegionKind
	Func   *Func
	Pragma *lang.Pragma // originating pragma (nil for candidates from carmot roi)
	ROI    *ROI         // the ROI profiling this region, when one exists
	Loop   *LoopInfo    // for RegionFor/RegionCandidate
	Pos    lang.Pos
}

// MarkKind enumerates execution-timeline markers.
type MarkKind int

// Marker kinds.
const (
	MarkRegionBegin MarkKind = iota
	MarkRegionEnd
	MarkIterBegin
	MarkIterEnd
	MarkCriticalBegin
	MarkCriticalEnd
	MarkOrderedBegin
	MarkOrderedEnd
	MarkSectionBegin
	MarkSectionEnd
	MarkTaskBegin
	MarkTaskEnd
	MarkBarrier
	MarkMasterBegin
	MarkMasterEnd
)

var markKindNames = [...]string{
	"region.begin", "region.end", "iter.begin", "iter.end",
	"critical.begin", "critical.end", "ordered.begin", "ordered.end",
	"section.begin", "section.end", "task.begin", "task.end",
	"barrier", "master.begin", "master.end",
}

// String returns the marker name.
func (k MarkKind) String() string { return markKindNames[k] }

// Mark is a zero-cost timeline marker consumed by the multicore simulator
// (internal/parexec). It has no effect on program semantics.
type Mark struct {
	InstrBase
	Kind   MarkKind
	Region *ParRegion
	// Task carries the task's pragma for MarkTaskBegin (depend clauses).
	Task *lang.Pragma
}

// IsTerminator reports false.
func (*Mark) IsTerminator() bool { return false }

// Operands returns nothing.
func (*Mark) Operands() []Value { return nil }

// Mnemonic returns the marker name.
func (m *Mark) Mnemonic() string { return "mark." + m.Kind.String() }

// Serving-layer benchmark (the BENCH_serve.json experiment): drives a
// burst of concurrent profile requests through a live serve.Server —
// full HTTP handler path, admission control, program cache, shared
// worker pool — and reports end-to-end request latency percentiles
// next to throughput and the serving counters. This is the experiment
// behind carmotd's headline claim: N tenants multiplexed over one
// machine's worth of pipeline goroutines with bounded, observable
// latency.
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"carmot/internal/serve"
)

// serveBenchSources is the request mix: three small programs with
// distinct PSEC shapes, so the burst exercises cache hits and private
// compiles rather than one degenerate key.
var serveBenchSources = []string{
	`int a[64];
int main() { int s = 0; #pragma carmot roi sum
for (int i = 0; i < 64; i++) { a[i] = i; s = s + a[i]; } return s % 251; }`,
	`int fib[32];
int main() { fib[0] = 0; fib[1] = 1; #pragma carmot roi fib
for (int i = 2; i < 32; i++) { fib[i] = fib[i-1] + fib[i-2]; } return fib[31] % 97; }`,
	`int m[48]; int o[48];
int main() { for (int i = 0; i < 48; i++) { m[i] = i * 3; }
#pragma carmot roi scale
for (int i = 0; i < 48; i++) { o[i] = m[i] * 2 + 1; } return o[7]; }`,
}

// ServeBenchReport is the machine-readable experiment output.
type ServeBenchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoMaxProcs int    `json:"gomaxprocs"`
	PoolSlots  int    `json:"pool_slots"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	// Outcomes.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Latency percentiles over successful requests, in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Throughput over the whole burst.
	WallMs        float64 `json:"wall_ms"`
	RequestsPerSs float64 `json:"requests_per_sec"`
	// Serving counters after the burst.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Retries     uint64 `json:"retries"`
}

// ServeBench runs the burst: clients concurrent workers issue requests
// round-robin over the source mix until total requests have been sent,
// then the server drains. Latencies are measured around the whole
// handler (admission, cache, pool wait, profile, marshalling).
func ServeBench(clients, total int) (ServeBenchReport, error) {
	if clients <= 0 {
		clients = 32
	}
	if total <= 0 {
		total = 1000
	}
	srv := serve.New(serve.Config{
		TenantBurst:    total * 2,
		TenantRate:     float64(total), // admission never the bottleneck here
		DefaultTimeout: 2 * time.Minute,
	})
	h := srv.Handler()
	rep := ServeBenchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PoolSlots:  srv.Pool().Total(),
		Clients:    clients,
		Requests:   total,
	}

	bodies := make([][]byte, len(serveBenchSources))
	for i, src := range serveBenchSources {
		b, err := json.Marshal(map[string]any{"source": src})
		if err != nil {
			return rep, err
		}
		bodies[i] = b
	}
	// Warm the cache so the measured burst reflects steady-state serving.
	for i := range bodies {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/profile", bytes.NewReader(bodies[i])))
		if w.Code != http.StatusOK {
			return rep, fmt.Errorf("warm-up request %d: status %d: %s", i, w.Code, w.Body.Bytes())
		}
	}

	latencies := make([]time.Duration, total)
	outcomes := make([]int, total)
	var wg sync.WaitGroup
	next := make(chan int, total)
	for i := 0; i < total; i++ {
		next <- i
	}
	close(next)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := httptest.NewRequest(http.MethodPost, "/v1/profile",
					bytes.NewReader(bodies[i%len(bodies)]))
				req.Header.Set(serve.TenantHeader, fmt.Sprintf("bench-%d", i%8))
				w := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(w, req)
				latencies[i] = time.Since(t0)
				outcomes[i] = w.Code
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var okLat []time.Duration
	for i, code := range outcomes {
		switch code {
		case http.StatusOK:
			rep.OK++
			okLat = append(okLat, latencies[i])
		case http.StatusTooManyRequests:
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	if len(okLat) == 0 {
		return rep, fmt.Errorf("no request succeeded (%d shed, %d errors)", rep.Shed, rep.Errors)
	}
	sort.Slice(okLat, func(a, b int) bool { return okLat[a] < okLat[b] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(okLat)-1))
		return float64(okLat[idx].Nanoseconds()) / 1e6
	}
	rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	rep.MaxMs = float64(okLat[len(okLat)-1].Nanoseconds()) / 1e6
	var sum time.Duration
	for _, l := range okLat {
		sum += l
	}
	rep.MeanMs = float64(sum.Nanoseconds()) / 1e6 / float64(len(okLat))
	rep.WallMs = float64(wall.Nanoseconds()) / 1e6
	rep.RequestsPerSs = float64(total) / wall.Seconds()

	st := srv.Snapshot()
	rep.CacheHits, rep.CacheMisses, rep.Retries = st.CacheHits, st.CacheMisses, st.Retries
	return rep, nil
}

// RenderServeBench formats the report as a text table.
func RenderServeBench(rep ServeBenchReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving-layer latency (%d requests, %d clients, %d pool slots)\n",
		rep.Requests, rep.Clients, rep.PoolSlots)
	fmt.Fprintf(&sb, "%-12s %10s\n", "metric", "value")
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p50", rep.P50Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p95", rep.P95Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "p99", rep.P99Ms)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "max", rep.MaxMs)
	fmt.Fprintf(&sb, "%-12s %10.2f ms\n", "mean", rep.MeanMs)
	fmt.Fprintf(&sb, "%-12s %10.0f req/s\n", "throughput", rep.RequestsPerSs)
	fmt.Fprintf(&sb, "ok=%d shed=%d errors=%d cache=%d/%d retries=%d\n",
		rep.OK, rep.Shed, rep.Errors, rep.CacheHits, rep.CacheHits+rep.CacheMisses, rep.Retries)
	return sb.String()
}

// MarshalServeBench encodes the report as indented JSON
// (BENCH_serve.json).
func MarshalServeBench(rep ServeBenchReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer converts MiniC source text into a token stream. `#pragma` lines are
// emitted as single TokPragma tokens whose Text holds the directive payload
// (everything after "#pragma"); `//` and `/* */` comments are skipped.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file is used in positions/diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Tokenize lexes the whole input, returning the tokens terminated by an EOF
// token, or the first lexical error.
func (l *Lexer) Tokenize() ([]Token, error) {
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &Error{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *Lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.peek()

	if c == '#' {
		// A preprocessor-style line; only #pragma is recognized.
		lineStart := l.off
		for l.off < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		line := strings.TrimSpace(l.src[lineStart:l.off])
		const prefix = "#pragma"
		if !strings.HasPrefix(line, prefix) {
			return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unsupported directive %q", line)}
		}
		payload := strings.TrimSpace(strings.TrimPrefix(line, prefix))
		return Token{Kind: TokPragma, Text: payload, Pos: start}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(l.peek2())) {
		return l.lexNumber(start)
	}
	if isAlpha(c) {
		startOff := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		word := l.src[startOff:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Text: word, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	}
	if c == '"' {
		l.advance()
		startOff := l.off
		for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
			l.advance()
		}
		if l.peek() != '"' {
			return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
		}
		text := l.src[startOff:l.off]
		l.advance()
		return Token{Kind: TokStringLit, Text: text, Pos: start}, nil
	}

	two := func(kind TokenKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Pos: start}, nil
	}
	one := func(kind TokenKind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Pos: start}, nil
	}

	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case '%':
		return one(TokPercent)
	case '+':
		if l.peek2() == '=' {
			return two(TokPlusAssign)
		}
		if l.peek2() == '+' {
			return two(TokPlusPlus)
		}
		return one(TokPlus)
	case '-':
		switch l.peek2() {
		case '=':
			return two(TokMinusAssign)
		case '-':
			return two(TokMinusMinus)
		case '>':
			return two(TokArrow)
		}
		return one(TokMinus)
	case '*':
		if l.peek2() == '=' {
			return two(TokStarAssign)
		}
		return one(TokStar)
	case '/':
		if l.peek2() == '=' {
			return two(TokSlashAssign)
		}
		return one(TokSlash)
	case '&':
		if l.peek2() == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if l.peek2() == '|' {
			return two(TokOrOr)
		}
	case '!':
		if l.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '=':
		if l.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '<':
		if l.peek2() == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if l.peek2() == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	startOff := l.off
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := *l
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			*l = save
		}
	}
	text := l.src[startOff:l.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("bad float literal %q", text)}
		}
		return Token{Kind: TokFloatLit, Text: text, Float: v, Pos: start}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("bad integer literal %q", text)}
	}
	return Token{Kind: TokIntLit, Text: text, Int: v, Pos: start}, nil
}

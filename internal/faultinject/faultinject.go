// Package faultinject provides deterministic fault-injection hooks for
// robustness tests. Production code marks interesting points with
// Fire("name"); tests install hooks at those points to force worker
// panics, slow batches, or cap exhaustion at exactly reproducible
// moments. With no hooks installed, Fire is a single atomic load, so the
// hooks cost nothing on hot paths in normal operation. With hooks
// installed, Fire is two atomic loads and a map read of a frozen map —
// chaos schedules arming many points never serialize the pipeline's hot
// paths on a shared lock.
//
// Points currently wired:
//
//	rt.worker.batch  — before a worker condenses one batch
//	rt.post.apply    — before the sequencer applies one ordered item
//	rt.shard.apply   — before a shard goroutine applies one op
//	rt.shard.replay  — before a respawned shard replays its journal
//	rt.post.finish   — before the postprocessor builds the PSECs
//	interp.step      — on the interpreter's periodic budget check
//	pinsim.trace     — before the Pin-analog tracer forwards one access
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// hook is the per-point handle. The registry maps a point name to its
// handle once and never mutates the map afterwards (Set copies on
// write), so Fire reads the handle's function pointer with a single
// atomic load and no lock.
type hook struct {
	fn atomic.Pointer[func()]
}

var (
	armed    atomic.Int32 // number of points with a hook installed
	mu       sync.Mutex   // serializes Set/Reset (registry mutation)
	registry atomic.Pointer[map[string]*hook]
)

func init() {
	registry.Store(&map[string]*hook{})
}

// Fire invokes the hook installed at point, if any. A hook that panics
// does so on the caller's goroutine — exactly what the containment tests
// need.
func Fire(point string) {
	if armed.Load() == 0 {
		return
	}
	if h := (*registry.Load())[point]; h != nil {
		if fn := h.fn.Load(); fn != nil {
			(*fn)()
		}
	}
}

// Set installs fn as the hook at point; a nil fn removes the hook.
// Replacing the hook of an already-registered point is a single atomic
// store; only the first Set of a new point copies the registry map.
func Set(point string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	reg := *registry.Load()
	h := reg[point]
	if h == nil {
		if fn == nil {
			return
		}
		h = &hook{}
		next := make(map[string]*hook, len(reg)+1)
		for k, v := range reg {
			next[k] = v
		}
		next[point] = h
		registry.Store(&next)
	}
	had := h.fn.Load() != nil
	if fn == nil {
		h.fn.Store(nil)
		if had {
			armed.Add(-1)
		}
		return
	}
	h.fn.Store(&fn)
	if !had {
		armed.Add(1)
	}
}

// Reset removes every installed hook. Tests defer this. The handles stay
// registered (the map only ever grows), only their functions are cleared.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, h := range *registry.Load() {
		if h.fn.Load() != nil {
			h.fn.Store(nil)
			armed.Add(-1)
		}
	}
}

// CountdownPanic returns a hook that panics with msg on its nth
// invocation (1-based) and is a no-op on every other call.
func CountdownPanic(n int64, msg string) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == n {
			panic(msg)
		}
	}
}

// PanicOnShots returns a hook that panics with msg on each listed
// invocation number (1-based). Multi-shot chaos schedules use it to hit
// the same point several times in one run.
func PanicOnShots(msg string, shots ...int64) func() {
	set := make(map[int64]bool, len(shots))
	for _, s := range shots {
		set[s] = true
	}
	var calls atomic.Int64
	return func() {
		if set[calls.Add(1)] {
			panic(msg)
		}
	}
}

// SleepOnShots returns a hook that sleeps d on each listed invocation
// number (1-based) — a targeted slow-stage injection.
func SleepOnShots(d time.Duration, shots ...int64) func() {
	set := make(map[int64]bool, len(shots))
	for _, s := range shots {
		set[s] = true
	}
	var calls atomic.Int64
	return func() {
		if set[calls.Add(1)] {
			time.Sleep(d)
		}
	}
}

// Sleep returns a hook that sleeps d on every invocation (slow-stage
// injection).
func Sleep(d time.Duration) func() {
	return func() { time.Sleep(d) }
}
